package jade

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"jade/internal/refresh"
)

// OperatorEvent is one scripted live-configuration change: at At seconds
// after workload start, apply Patch (the same JSON grammar the admin
// /config endpoint accepts) through the run's refresh hub. Because the
// event fires at an exact virtual tick on the simulation goroutine,
// equal seeds with equal schedules replay byte-identically.
type OperatorEvent struct {
	At    float64         `json:"at"`
	Patch json.RawMessage `json:"patch"`
}

// OperatorSchedule is a scripted live-configuration schedule, applied in
// At order.
type OperatorSchedule []OperatorEvent

// Sorted returns the schedule ordered by At (stable, original intact).
func (s OperatorSchedule) Sorted() OperatorSchedule {
	out := append(OperatorSchedule(nil), s...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// ConfigPatch is the refreshable subset of Spec, with every field
// optional: absent fields keep their current value. It is the wire
// grammar of the admin POST /config body, Spec.Operator events and chaos
// "config" events. Fields outside this grammar (workload shape, node
// counts, telemetry sinks, ...) are structural and rejected as "not
// refreshable at runtime".
type ConfigPatch struct {
	Sizing   *SizingPatchGroup `json:"sizing,omitempty"`
	Routing  *RoutingPatch     `json:"routing,omitempty"`
	Faults   *FaultsPatch      `json:"faults,omitempty"`
	Checks   *ChecksPatch      `json:"checks,omitempty"`
	Alerting *AlertingPatch    `json:"alerting,omitempty"`
}

// SizingPatchGroup addresses the two sizing loops.
type SizingPatchGroup struct {
	App *SizingPatch `json:"app,omitempty"`
	DB  *SizingPatch `json:"db,omitempty"`
}

// SizingPatch retunes one sizing loop's thresholds and hysteresis.
type SizingPatch struct {
	Min            *float64 `json:"min,omitempty"`
	Max            *float64 `json:"max,omitempty"`
	InhibitSeconds *float64 `json:"inhibit_seconds,omitempty"`
}

// RoutingPatch swaps selector policies and tuning live. Policy, when
// set, applies to every tier; per-tier fields override it.
type RoutingPatch struct {
	Policy            *string  `json:"policy,omitempty"`
	L4                *string  `json:"l4,omitempty"`
	App               *string  `json:"app,omitempty"`
	DB                *string  `json:"db,omitempty"`
	ProbeAfterSeconds *float64 `json:"probe_after_seconds,omitempty"`
	HalfLifeSeconds   *float64 `json:"half_life_seconds,omitempty"`
}

// FaultsPatch reaches the network fabric's refreshable knobs.
type FaultsPatch struct {
	Network *NetworkPatch `json:"network,omitempty"`
}

// NetworkPatch replaces per-tier RPC timeout/retry budgets.
type NetworkPatch struct {
	RPC map[string]RPCBudget `json:"rpc,omitempty"`
}

// ChecksPatch retargets SLO objectives by name.
type ChecksPatch struct {
	SLOTargets map[string]float64 `json:"slo_targets,omitempty"`
}

// AlertingPatch retunes the alerting plane's rule thresholds. The
// evaluation ticker period and the on/off switch are structural (they
// change the event schedule) and deliberately absent.
type AlertingPatch struct {
	FastWindowSeconds *float64 `json:"fast_window_seconds,omitempty"`
	SlowWindowSeconds *float64 `json:"slow_window_seconds,omitempty"`
	BudgetFraction    *float64 `json:"budget_fraction,omitempty"`
	PageBurn          *float64 `json:"page_burn,omitempty"`
	WarnBurn          *float64 `json:"warn_burn,omitempty"`
	ZThreshold        *float64 `json:"z_threshold,omitempty"`
	SkewFactor        *float64 `json:"skew_factor,omitempty"`
	HysteresisSeconds *float64 `json:"hysteresis_seconds,omitempty"`
}

// empty reports whether the patch changes nothing.
func (p *ConfigPatch) empty() bool {
	return p == nil || (p.Sizing == nil && p.Routing == nil && p.Faults == nil && p.Checks == nil && p.Alerting == nil)
}

// ParseConfigPatch decodes a refreshable-config patch, rejecting fields
// outside the refreshable grammar with a structured FieldError.
func ParseConfigPatch(patch []byte) (*ConfigPatch, error) {
	if len(bytes.TrimSpace(patch)) == 0 {
		return nil, &ValidationError{Fields: []FieldError{{Msg: "empty patch"}}}
	}
	dec := json.NewDecoder(bytes.NewReader(patch))
	dec.DisallowUnknownFields()
	var p ConfigPatch
	if err := dec.Decode(&p); err != nil {
		if name, ok := unknownField(err); ok {
			return nil, &ValidationError{Fields: []FieldError{{Path: name, Msg: "not refreshable at runtime (or unknown)"}}}
		}
		return nil, &ValidationError{Fields: []FieldError{{Msg: "invalid patch JSON: " + err.Error()}}}
	}
	if dec.More() {
		return nil, &ValidationError{Fields: []FieldError{{Msg: "trailing data after patch object"}}}
	}
	return &p, nil
}

// unknownField extracts the field name from encoding/json's
// DisallowUnknownFields error.
func unknownField(err error) (string, bool) {
	msg := err.Error()
	const marker = `unknown field "`
	i := strings.Index(msg, marker)
	if i < 0 {
		return "", false
	}
	rest := msg[i+len(marker):]
	j := strings.Index(rest, `"`)
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// CheckPatch validates a patch's syntax and grammar without a running
// scenario (Spec.Validate uses it for operator schedules and chaos
// config events; value constraints against the live state are re-checked
// at application time).
func CheckPatch(patch []byte) error {
	p, err := ParseConfigPatch(patch)
	if err != nil {
		return err
	}
	var ve ValidationError
	if p.empty() {
		ve.addf("", "patch changes nothing")
	}
	if p.Routing != nil {
		for _, tier := range []struct {
			path string
			v    *string
		}{
			{"routing.policy", p.Routing.Policy},
			{"routing.l4", p.Routing.L4},
			{"routing.app", p.Routing.App},
			{"routing.db", p.Routing.DB},
		} {
			if tier.v == nil {
				continue
			}
			if _, err := ParseRoutingPolicy(*tier.v); err != nil {
				ve.addf(tier.path, "unknown policy %q (want one of %v)", *tier.v, RoutingPolicies())
			}
		}
	}
	return ve.or()
}

// ConfigChange is one applied (or rejected) live configuration change,
// as reported on the /config page and in ScenarioResult.ConfigChanges.
type ConfigChange struct {
	T      float64         `json:"t"`
	Source string          `json:"source"`
	Patch  json.RawMessage `json:"patch"`
	Error  string          `json:"error,omitempty"`
}

// ConfigSnapshot is the GET /config wire document (jade-config/v1): the
// current refreshable configuration plus the applied-change log.
type ConfigSnapshot struct {
	Schema     string `json:"schema"`
	Time       float64 `json:"time"`
	Generation uint64  `json:"generation"`
	Refreshable struct {
		Sizing struct {
			App SizingConfig `json:"app"`
			DB  SizingConfig `json:"db"`
		} `json:"sizing"`
		Routing struct {
			L4                string  `json:"l4"`
			App               string  `json:"app"`
			DB                string  `json:"db"`
			ProbeAfterSeconds float64 `json:"probe_after_seconds"`
			HalfLifeSeconds   float64 `json:"half_life_seconds"`
		} `json:"routing"`
		RPC        map[string]RPCBudget `json:"rpc,omitempty"`
		SLOTargets map[string]float64   `json:"slo_targets,omitempty"`
		Alerting   struct {
			FastWindowSeconds float64 `json:"fast_window_seconds"`
			SlowWindowSeconds float64 `json:"slow_window_seconds"`
			BudgetFraction    float64 `json:"budget_fraction"`
			PageBurn          float64 `json:"page_burn"`
			WarnBurn          float64 `json:"warn_burn"`
			ZThreshold        float64 `json:"z_threshold"`
			SkewFactor        float64 `json:"skew_factor"`
			HysteresisSeconds float64 `json:"hysteresis_seconds"`
		} `json:"alerting"`
	} `json:"refreshable"`
	Applied  []ConfigChange `json:"applied"`
	Rejected int            `json:"rejected"`
	Pending  int            `json:"pending"`
}

// ConfigSnapshotSchema identifies the /config document.
const ConfigSnapshotSchema = "jade-config/v1"

// ParseConfigSnapshot decodes and schema-checks a GET /config document
// (jadectl's config subcommand and the smoke tests share it).
func ParseConfigSnapshot(data []byte) (*ConfigSnapshot, error) {
	var doc ConfigSnapshot
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("jade: config snapshot: %w", err)
	}
	if doc.Schema != ConfigSnapshotSchema {
		return nil, fmt.Errorf("jade: config snapshot: schema %q, want %q", doc.Schema, ConfigSnapshotSchema)
	}
	return &doc, nil
}

// configRuntime owns a scenario's refreshable configuration: the typed
// views the managers subscribe to, the hub every change funnels through,
// and the applied-change log. All mutation happens on the simulation
// goroutine via hub.Apply/Drain; the views' own locks make reads safe
// from anywhere.
type configRuntime struct {
	hub        *refresh.Hub
	appSizing  *refresh.View[SizingConfig]
	dbSizing   *refresh.View[SizingConfig]
	routing    *refresh.View[RoutingConfig]
	rpc        *refresh.View[map[string]RPCBudget]
	sloTargets *refresh.View[map[string]float64]
	alerting   *refresh.View[AlertConfig]

	mu  sync.Mutex
	log []ConfigChange
}

// newConfigRuntime seeds the views with the scenario's effective (post-
// default) configuration and binds the hub callbacks.
func newConfigRuntime(hub *refresh.Hub, app, db SizingConfig, routing RoutingConfig, rpc map[string]RPCBudget, sloTargets map[string]float64, alerting AlertConfig) *configRuntime {
	rt := &configRuntime{
		hub:        hub,
		appSizing:  refresh.NewView("sizing.app", app),
		dbSizing:   refresh.NewView("sizing.db", db),
		routing:    refresh.NewView("routing", routing),
		rpc:        refresh.NewView("faults.network.rpc", copyBudgets(rpc)),
		sloTargets: refresh.NewView("checks.slo_targets", copyTargets(sloTargets)),
		alerting:   refresh.NewView("alerting", alerting),
	}
	hub.Bind(rt.check, rt.apply)
	return rt
}

func copyBudgets(in map[string]RPCBudget) map[string]RPCBudget {
	out := make(map[string]RPCBudget, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func copyTargets(in map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// resolved is a fully-validated candidate configuration: the values the
// views would hold after the patch commits.
type resolved struct {
	app, db    SizingConfig
	routing    RoutingConfig
	rpc        map[string]RPCBudget
	sloTargets map[string]float64
	alerting   AlertConfig

	appChanged, dbChanged, routingChanged bool
	rpcChanged, sloChanged, alertChanged  bool
}

// resolve merges the patch over the current view values and validates
// the result, reporting every violated constraint with its field path.
func (rt *configRuntime) resolve(p *ConfigPatch) (resolved, error) {
	r := resolved{
		app:        rt.appSizing.Get(),
		db:         rt.dbSizing.Get(),
		routing:    rt.routing.Get(),
		rpc:        rt.rpc.Get(),
		sloTargets: rt.sloTargets.Get(),
		alerting:   rt.alerting.Get(),
	}
	var ve ValidationError
	if p.empty() {
		ve.addf("", "patch changes nothing")
		return r, ve.or()
	}
	if p.Sizing != nil {
		apply := func(path string, cur SizingConfig, sp *SizingPatch) (SizingConfig, bool) {
			if sp == nil {
				return cur, false
			}
			if sp.Min != nil {
				cur.Min = *sp.Min
			}
			if sp.Max != nil {
				cur.Max = *sp.Max
			}
			if sp.InhibitSeconds != nil {
				cur.InhibitSeconds = *sp.InhibitSeconds
			}
			if cur.Min < 0 {
				ve.addf(path+".min", "must be >= 0, got %g", cur.Min)
			}
			if cur.Max <= cur.Min {
				ve.addf(path+".max", "must be > %s.min (%g), got %g", path, cur.Min, cur.Max)
			}
			if cur.InhibitSeconds < 0 {
				ve.addf(path+".inhibit_seconds", "must be >= 0, got %g", cur.InhibitSeconds)
			}
			return cur, true
		}
		r.app, r.appChanged = apply("sizing.app", r.app, p.Sizing.App)
		r.db, r.dbChanged = apply("sizing.db", r.db, p.Sizing.DB)
	}
	if p.Routing != nil {
		rc := r.routing
		if p.Routing.Policy != nil {
			rc.L4, rc.App, rc.DB = *p.Routing.Policy, *p.Routing.Policy, *p.Routing.Policy
		}
		if p.Routing.L4 != nil {
			rc.L4 = *p.Routing.L4
		}
		if p.Routing.App != nil {
			rc.App = *p.Routing.App
		}
		if p.Routing.DB != nil {
			rc.DB = *p.Routing.DB
		}
		if p.Routing.ProbeAfterSeconds != nil {
			rc.ProbeAfterSeconds = *p.Routing.ProbeAfterSeconds
		}
		if p.Routing.HalfLifeSeconds != nil {
			rc.HalfLifeSeconds = *p.Routing.HalfLifeSeconds
		}
		for _, tier := range []struct{ path, policy string }{
			{"routing.l4", rc.L4}, {"routing.app", rc.App}, {"routing.db", rc.DB},
		} {
			if tier.policy == "" {
				continue
			}
			if _, err := ParseRoutingPolicy(tier.policy); err != nil {
				ve.addf(tier.path, "unknown policy %q (want one of %v)", tier.policy, RoutingPolicies())
			}
		}
		if rc.ProbeAfterSeconds < 0 {
			ve.addf("routing.probe_after_seconds", "must be >= 0, got %g", rc.ProbeAfterSeconds)
		}
		if rc.HalfLifeSeconds < 0 {
			ve.addf("routing.half_life_seconds", "must be >= 0, got %g", rc.HalfLifeSeconds)
		}
		r.routing, r.routingChanged = rc, true
	}
	if p.Faults != nil && p.Faults.Network != nil && p.Faults.Network.RPC != nil {
		rpc := copyBudgets(r.rpc)
		for tier, b := range p.Faults.Network.RPC {
			if b.TimeoutSeconds < 0 {
				ve.addf("faults.network.rpc["+tier+"].timeout_seconds", "must be >= 0, got %g", b.TimeoutSeconds)
			}
			if b.Attempts < 0 {
				ve.addf("faults.network.rpc["+tier+"].attempts", "must be >= 0, got %d", b.Attempts)
			}
			if b.BackoffSeconds < 0 {
				ve.addf("faults.network.rpc["+tier+"].backoff_seconds", "must be >= 0, got %g", b.BackoffSeconds)
			}
			rpc[tier] = b
		}
		r.rpc, r.rpcChanged = rpc, true
	}
	if p.Checks != nil && p.Checks.SLOTargets != nil {
		slo := copyTargets(r.sloTargets)
		for name, target := range p.Checks.SLOTargets {
			if target <= 0 {
				ve.addf("checks.slo_targets["+name+"]", "must be > 0, got %g", target)
			}
			slo[name] = target
		}
		r.sloTargets, r.sloChanged = slo, true
	}
	if p.Alerting != nil {
		ac := r.alerting
		set := func(dst *float64, src *float64) {
			if src != nil {
				*dst = *src
			}
		}
		set(&ac.FastWindowSeconds, p.Alerting.FastWindowSeconds)
		set(&ac.SlowWindowSeconds, p.Alerting.SlowWindowSeconds)
		set(&ac.BudgetFraction, p.Alerting.BudgetFraction)
		set(&ac.PageBurn, p.Alerting.PageBurn)
		set(&ac.WarnBurn, p.Alerting.WarnBurn)
		set(&ac.ZThreshold, p.Alerting.ZThreshold)
		set(&ac.SkewFactor, p.Alerting.SkewFactor)
		set(&ac.HysteresisSeconds, p.Alerting.HysteresisSeconds)
		for _, f := range []struct {
			path string
			v    float64
		}{
			{"alerting.fast_window_seconds", ac.FastWindowSeconds},
			{"alerting.slow_window_seconds", ac.SlowWindowSeconds},
			{"alerting.budget_fraction", ac.BudgetFraction},
			{"alerting.page_burn", ac.PageBurn},
			{"alerting.warn_burn", ac.WarnBurn},
			{"alerting.z_threshold", ac.ZThreshold},
			{"alerting.skew_factor", ac.SkewFactor},
			{"alerting.hysteresis_seconds", ac.HysteresisSeconds},
		} {
			if f.v <= 0 {
				ve.addf(f.path, "must be > 0, got %g", f.v)
			}
		}
		if ac.FastWindowSeconds > ac.SlowWindowSeconds {
			ve.addf("alerting.fast_window_seconds", "must be <= slow window (%g), got %g", ac.SlowWindowSeconds, ac.FastWindowSeconds)
		}
		if ac.WarnBurn > ac.PageBurn {
			ve.addf("alerting.warn_burn", "must be <= page burn (%g), got %g", ac.PageBurn, ac.WarnBurn)
		}
		if ac.BudgetFraction > 1 {
			ve.addf("alerting.budget_fraction", "must be <= 1, got %g", ac.BudgetFraction)
		}
		r.alerting, r.alertChanged = ac, true
	}
	return r, ve.or()
}

// check is the hub's advisory validator: it parses and resolves against
// the latest committed values. Safe from any goroutine.
func (rt *configRuntime) check(source string, patch []byte) error {
	p, err := ParseConfigPatch(patch)
	if err != nil {
		return err
	}
	_, err = rt.resolve(p)
	return err
}

// apply is the hub's authoritative applier: re-validate and commit the
// views. Simulation goroutine only; the hub has already opened the
// "config" trace span.
func (rt *configRuntime) apply(now float64, source string, patch []byte) error {
	p, perr := ParseConfigPatch(patch)
	var r resolved
	if perr == nil {
		r, perr = rt.resolve(p)
	}
	change := ConfigChange{T: now, Source: source, Patch: append(json.RawMessage(nil), patch...)}
	if perr != nil {
		change.Error = perr.Error()
		rt.mu.Lock()
		rt.log = append(rt.log, change)
		rt.mu.Unlock()
		return perr
	}
	if r.appChanged {
		rt.appSizing.Set(now, r.app)
	}
	if r.dbChanged {
		rt.dbSizing.Set(now, r.db)
	}
	if r.routingChanged {
		rt.routing.Set(now, r.routing)
	}
	if r.rpcChanged {
		rt.rpc.Set(now, r.rpc)
	}
	if r.sloChanged {
		rt.sloTargets.Set(now, r.sloTargets)
	}
	if r.alertChanged {
		rt.alerting.Set(now, r.alerting)
	}
	rt.mu.Lock()
	rt.log = append(rt.log, change)
	rt.mu.Unlock()
	return nil
}

// generation sums the view generations: it bumps on every committed
// change.
func (rt *configRuntime) generation() uint64 {
	return rt.appSizing.Generation() + rt.dbSizing.Generation() +
		rt.routing.Generation() + rt.rpc.Generation() +
		rt.sloTargets.Generation() + rt.alerting.Generation()
}

// changes returns a copy of the applied/rejected change log.
func (rt *configRuntime) changes() []ConfigChange {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]ConfigChange(nil), rt.log...)
}

// renderPage renders the GET /config document.
func (rt *configRuntime) renderPage(now float64) []byte {
	doc := ConfigSnapshot{Schema: ConfigSnapshotSchema, Time: now, Generation: rt.generation()}
	doc.Refreshable.Sizing.App = rt.appSizing.Get()
	doc.Refreshable.Sizing.DB = rt.dbSizing.Get()
	routing := rt.routing.Get()
	doc.Refreshable.Routing.L4 = routing.L4
	doc.Refreshable.Routing.App = routing.App
	doc.Refreshable.Routing.DB = routing.DB
	doc.Refreshable.Routing.ProbeAfterSeconds = routing.ProbeAfterSeconds
	doc.Refreshable.Routing.HalfLifeSeconds = routing.HalfLifeSeconds
	doc.Refreshable.RPC = rt.rpc.Get()
	doc.Refreshable.SLOTargets = rt.sloTargets.Get()
	ac := rt.alerting.Get()
	doc.Refreshable.Alerting.FastWindowSeconds = ac.FastWindowSeconds
	doc.Refreshable.Alerting.SlowWindowSeconds = ac.SlowWindowSeconds
	doc.Refreshable.Alerting.BudgetFraction = ac.BudgetFraction
	doc.Refreshable.Alerting.PageBurn = ac.PageBurn
	doc.Refreshable.Alerting.WarnBurn = ac.WarnBurn
	doc.Refreshable.Alerting.ZThreshold = ac.ZThreshold
	doc.Refreshable.Alerting.SkewFactor = ac.SkewFactor
	doc.Refreshable.Alerting.HysteresisSeconds = ac.HysteresisSeconds
	doc.Applied = rt.changes()
	_, doc.Rejected, doc.Pending = rt.hub.Stats()
	// The applied log includes rejected submissions (with their error);
	// keep only committed ones in Applied and count the rest.
	applied := doc.Applied[:0]
	for _, c := range doc.Applied {
		if c.Error == "" {
			applied = append(applied, c)
		}
	}
	doc.Applied = applied
	b, _ := json.MarshalIndent(&doc, "", "  ")
	return append(b, '\n')
}

// configPostResponse is the POST /config response body.
type configPostResponse struct {
	Status string       `json:"status"` // accepted | rejected
	Detail string       `json:"detail,omitempty"`
	Fields []FieldError `json:"fields,omitempty"`
}

// handleConfigPost validates and enqueues a live patch; the simulation
// goroutine drains it at the next config-drain tick. Never touches live
// sim state (the publisher serves it from the HTTP goroutine).
func (rt *configRuntime) handleConfigPost(body []byte) (int, []byte) {
	respond := func(status int, r configPostResponse) (int, []byte) {
		b, _ := json.MarshalIndent(&r, "", "  ")
		return status, append(b, '\n')
	}
	if err := rt.hub.Enqueue(refresh.SourceAdmin, body); err != nil {
		if err == refresh.ErrClosed {
			return respond(409, configPostResponse{Status: "rejected", Detail: "run complete; configuration frozen"})
		}
		return respond(400, configPostResponse{Status: "rejected", Detail: "validation failed", Fields: AsValidationError(err)})
	}
	return respond(202, configPostResponse{Status: "accepted", Detail: "patch applies at the next drain tick"})
}
