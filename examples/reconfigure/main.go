// Reconfigure: the paper's qualitative scenario (§5.1, Fig. 4).
//
// Initially Apache1 (node1) is connected to Tomcat1 (node2). We replace
// that connection by one to Tomcat2 (node3, AJP port 8098).
//
// Without Jade this takes manual, legacy-specific steps: log on node1,
// run the Apache shutdown script, hand-edit worker.properties, run the
// httpd script. With Jade it is four operations on the management layer:
//
//	Apache1.stop()
//	Apache1.unbind("ajp-itf")
//	Apache1.bind("ajp-itf", tomcat2-itf)
//	Apache1.start()
//
// The wrapper reflects the rebind into worker.properties automatically;
// this program prints the transcript and the regenerated file.
package main

import (
	"flag"
	"fmt"
	"log"

	"jade"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	out, err := jade.Figure4(*seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fig. 4 reconfiguration scenario — with Jade:")
	fmt.Println()
	fmt.Println(out)
}
