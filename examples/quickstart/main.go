// Quickstart: deploy the paper's three-tier RUBiS architecture from an
// ADL description on a simulated 9-node cluster, send a few client
// requests through it, and introspect the resulting management layer —
// the uniform component view Jade gives an administration program.
package main

import (
	"fmt"
	"log"

	"jade"
)

func main() {
	// A platform is one Jade instance managing one simulated cluster.
	p := jade.NewPlatform(jade.DefaultPlatformOptions())

	// Register the RUBiS database dump the Software Installation
	// Service installs on MySQL replicas.
	dump, err := jade.DefaultDataset().InitialDatabase(1)
	if err != nil {
		log.Fatal(err)
	}
	p.RegisterDump("rubis", dump)

	// Deploy the built-in architecture: PLB -> Tomcat -> C-JDBC -> MySQL.
	def, err := jade.ParseADL(jade.ThreeTierADL)
	if err != nil {
		log.Fatal(err)
	}
	var dep *jade.Deployment
	derr := fmt.Errorf("deployment did not complete")
	p.Deploy(def, func(d *jade.Deployment, err error) { dep, derr = d, err })
	p.Eng.Run() // advance virtual time until the deployment settles
	if derr != nil {
		log.Fatal(derr)
	}
	fmt.Printf("deployed %q in %.1f simulated seconds\n\n", def.Name, p.Eng.Now())

	// Introspection: the whole J2EE infrastructure as one composite.
	fmt.Println("management layer view:")
	fmt.Println(dep.Describe())

	// Drive a short constant workload through the front end.
	front, err := dep.FrontEnd()
	if err != nil {
		log.Fatal(err)
	}
	em := jade.NewEmulator(p.Eng, front, jade.BiddingMix(),
		jade.ConstantProfile{Clients: 50, Length: 120}, jade.DefaultDataset())
	if err := em.Start(); err != nil {
		log.Fatal(err)
	}
	p.Eng.RunUntil(p.Eng.Now() + 130)
	em.Stop()
	p.Eng.Run()

	s := em.Stats().LatencySummary()
	fmt.Printf("workload: %d requests completed, %d failed\n",
		em.Stats().Completed, em.Stats().Failed)
	fmt.Printf("latency:  mean %.0f ms, p99 %.0f ms\n", s.Mean*1000, s.P99*1000)

	// Attribute introspection through the uniform interface.
	tomcat := dep.MustComponent("tomcat1")
	fmt.Printf("\ntomcat1 attributes: ")
	for _, a := range tomcat.Attributes() {
		v, _ := tomcat.Attribute(a)
		fmt.Printf("%s=%s ", a, v)
	}
	fmt.Println()

	// The wrappers generated real legacy configuration files.
	fmt.Println("\ngenerated legacy configuration files:")
	for _, path := range p.FS.List() {
		fmt.Printf("  %s\n", path)
	}
}
