// Selfsizing: the paper's §5.2 evaluation scenario, live. The RUBiS
// workload ramps from 80 to 500 emulated clients and back; Jade's two
// self-optimization control loops watch the smoothed CPU usage of the
// application and database tiers and resize them between thresholds,
// while the same run without Jade saturates and thrashes.
//
// Flags:
//
//	-seed N       deterministic trajectory selector (default 1)
//	-speedup X    compress the ramp X-fold (default 5; 1 = paper's ~50 min)
//	-csv DIR      also write the figure data as CSV
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"jade"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	speedup := flag.Float64("speedup", 5, "ramp time compression")
	csvDir := flag.String("csv", "", "directory for CSV output")
	flag.Parse()

	fmt.Printf("Jade self-sizing scenario (seed %d, speedup %.0fx)\n", *seed, *speedup)
	fmt.Println("workload: 80 clients -> +21/min -> 500 -> symmetric decrease")
	fmt.Println()

	pr, err := jade.RunPaperScenario(*seed, *speedup)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(pr.Figure5())
	fmt.Println(pr.Figure6())
	fmt.Println(pr.Figure7())
	fmt.Println(pr.Figure8())
	fmt.Println(pr.Figure9())
	fmt.Println(pr.Summary())

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for name, body := range pr.CSVs() {
			path := filepath.Join(*csvDir, name)
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}
