// Recovery: the self-recovery autonomic manager (Fig. 3 of the paper;
// detailed in the authors' SRDS'05 companion paper). A steady workload
// runs against the three-tier deployment; at t=100 s the node hosting
// tomcat1 crashes. The failure detector notices the dead replica, the
// repair reactor allocates a fresh node, reinstalls Tomcat through the
// Software Installation Service, rebinds the new replica to the load
// balancer, and service resumes — without human intervention.
package main

import (
	"flag"
	"fmt"
	"log"

	"jade"
)

func main() {
	seed := flag.Int64("seed", 3, "simulation seed")
	clients := flag.Int("clients", 60, "steady client population")
	flag.Parse()

	cfg := jade.DefaultScenario(*seed, true)
	cfg.Recovery = true
	cfg.Profile = jade.ConstantProfile{Clients: *clients, Length: 400}
	cfg.FailComponent = "tomcat1"
	cfg.FailAt = 100
	cfg.Logf = func(format string, args ...any) {
		fmt.Printf("  jade: "+format+"\n", args...)
	}

	fmt.Printf("steady workload of %d clients; killing tomcat1's node at t=100s\n\n", *clients)
	r, err := jade.RunScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("repairs completed:   %d\n", r.Repairs)
	fmt.Printf("requests completed:  %d\n", r.Stats.Completed)
	fmt.Printf("requests failed:     %d (the outage window while the replica is rebuilt)\n", r.Stats.Failed)
	s := r.Stats.LatencySummary()
	fmt.Printf("latency:             mean %.0f ms, p99 %.0f ms\n", s.Mean*1000, s.P99*1000)
	fmt.Println()
	fmt.Println("final management layer:")
	fmt.Println(r.Deployment.Describe())
}
