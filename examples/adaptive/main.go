// Adaptive: the paper's future-work directions (§7), implemented.
//
//  1. "Improving the self-optimizing algorithm by setting incrementally
//     and dynamically its parameters": an AdaptiveTuner control loop
//     watches the client-perceived response time and nudges the
//     application tier's Max CPU threshold — down when the latency SLO
//     is violated (provision earlier), up when latency is comfortable
//     (pack nodes tighter).
//  2. "The problem of conflicting autonomic policies ... policy
//     arbitration managers": an Arbiter gates every reconfiguration;
//     self-recovery preempts self-optimization, never the reverse.
//
// The run ramps load against the three-tier deployment with both
// mechanisms armed, then prints the tuned-threshold trace and the
// arbitration log.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"

	"jade"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	slo := flag.Float64("slo", 0.3, "latency objective in seconds")
	flag.Parse()

	p := jade.NewPlatform(jade.DefaultPlatformOptions())
	dump, err := jade.DefaultDataset().InitialDatabase(*seed)
	if err != nil {
		log.Fatal(err)
	}
	p.RegisterDump("rubis", dump)
	def, err := jade.ParseADL(jade.ThreeTierADL)
	if err != nil {
		log.Fatal(err)
	}
	var dep *jade.Deployment
	derr := errors.New("deployment did not complete")
	p.Deploy(def, func(d *jade.Deployment, err error) { dep, derr = d, err })
	p.Eng.Run()
	if derr != nil {
		log.Fatal(derr)
	}

	appTier, err := jade.NewAppTier(p, dep, "plb1", "cjdbc1", []string{"tomcat1"})
	if err != nil {
		log.Fatal(err)
	}
	dbTier, err := jade.NewDBTier(p, dep, "cjdbc1", []string{"mysql1"})
	if err != nil {
		log.Fatal(err)
	}

	// One arbiter gates every manager.
	arb := jade.NewArbiter(60)

	appMgr, err := jade.NewSizingManager(p, "self-optimization-app", appTier, jade.AppSizingDefaults(), nil)
	if err != nil {
		log.Fatal(err)
	}
	appMgr.Reactor.Arbiter = arb
	dbMgr, err := jade.NewSizingManager(p, "self-optimization-db", dbTier, jade.DBSizingDefaults(), nil)
	if err != nil {
		log.Fatal(err)
	}
	dbMgr.Reactor.Arbiter = arb
	rec, err := jade.NewRecoveryManager(p, "self-recovery", 1, appTier, dbTier)
	if err != nil {
		log.Fatal(err)
	}
	rec.Arbiter = arb
	for _, l := range p.Loops() {
		if err := l.Start(); err != nil {
			log.Fatal(err)
		}
	}

	// Client emulator + the adaptive tuner reading its windowed latency.
	front, err := dep.FrontEnd()
	if err != nil {
		log.Fatal(err)
	}
	profile := jade.RampProfile{Base: 80, Peak: 500, StepPerMinute: 105, HoldAtPeak: 60}
	em := jade.NewEmulator(p.Eng, front, jade.BiddingMix(), profile, jade.DefaultDataset())
	if err := em.Start(); err != nil {
		log.Fatal(err)
	}
	tuner := jade.NewAdaptiveTuner(appMgr.Reactor, func(now float64) (float64, bool) {
		v := em.Stats().MeanLatencyBetween(now-30, now)
		return v, v > 0
	}, *slo)
	loop, err := jade.NewControlLoop(p, "adaptive-tuner", 15, tuner, tuner)
	if err != nil {
		log.Fatal(err)
	}
	if err := loop.Start(); err != nil {
		log.Fatal(err)
	}

	// Mid-run, crash the database replica's node: recovery must preempt
	// whatever quiet window optimization holds.
	p.Eng.After(300, "crash", func() {
		if node, err := dep.NodeOf("mysql1"); err == nil {
			fmt.Printf("[t=%6.1fs] injected crash of %s (hosts mysql1)\n", p.Eng.Now(), node.Name())
			node.Fail()
		}
	})

	end := p.Eng.Now() + profile.Duration() + 60
	p.Eng.RunUntil(end)
	em.Stop()

	s := em.Stats().LatencySummary()
	fmt.Printf("\nSLO %.0f ms — measured mean %.0f ms, p99 %.0f ms\n",
		*slo*1000, s.Mean*1000, s.P99*1000)
	fmt.Printf("repairs: %d   app replicas peak: %.0f   db replicas peak: %.0f\n",
		rec.Repairs, appMgr.Replicas.Max(), dbMgr.Replicas.Max())
	raises, lowers := tuner.Adjustments()
	fmt.Printf("adaptive tuner: %d raises, %d lowers; final app Max threshold %.2f\n",
		raises, lowers, appMgr.Reactor.Max)

	fmt.Println("\narbitration log (last 12 decisions):")
	decisions := arb.Decisions()
	if len(decisions) > 12 {
		decisions = decisions[len(decisions)-12:]
	}
	for _, d := range decisions {
		verdict := "DENIED"
		if d.Granted {
			verdict = "granted"
		}
		fmt.Printf("  t=%7.1fs %-22s prio=%-2d %-7s %s\n", d.T, d.Requester, d.Priority, verdict, d.Reason)
	}
	fmt.Println("\nJade's own architecture:")
	fmt.Println(p.DescribeManagement())
}
