package jade

import (
	"errors"
	"sort"
	"strings"
	"testing"
)

// replicaCounts tallies deployed app and db replicas by component prefix.
func replicaCounts(names []string) (app, db int) {
	for _, n := range names {
		switch {
		case strings.HasPrefix(n, "tomcat"):
			app++
		case strings.HasPrefix(n, "mysql"):
			db++
		}
	}
	return
}

// TestExportADLRedeploysSelfResizedArchitecture runs the managed scenario
// under sustained load until the tiers have grown, exports the live
// architecture as ADL, redeploys it on a fresh cluster, and checks the
// redeployed system matches replica-for-replica and binding-for-binding.
func TestExportADLRedeploysSelfResizedArchitecture(t *testing.T) {
	cfg := DefaultScenario(5, true)
	cfg.Profile = ConstantProfile{Clients: 400, Length: 300}
	cfg.DrainSeconds = 1 // export before the idle tiers shrink back
	r, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	liveNames := r.Deployment.ComponentNames()
	liveApp, liveDB := replicaCounts(liveNames)
	if liveApp+liveDB <= 2 {
		t.Fatalf("scenario did not self-resize (app=%d db=%d); export test needs grown tiers", liveApp, liveDB)
	}

	def := r.Deployment.ExportADL()

	// Fresh platform: same substrate, nothing deployed, dump re-registered
	// under the name the ADL references.
	popts := DefaultPlatformOptions()
	popts.Nodes = r.Config.Nodes
	popts.Seed = 12345 // redeploy must not depend on the original seed
	p2 := NewPlatform(popts)
	dump, err := r.Config.Dataset.InitialDatabase(r.Config.Seed)
	if err != nil {
		t.Fatal(err)
	}
	p2.RegisterDump("rubis", dump)

	var dep2 *Deployment
	derr := errors.New("pending")
	p2.Deploy(def, func(d *Deployment, err error) { dep2, derr = d, err })
	p2.Eng.Run()
	if derr != nil {
		t.Fatalf("redeploy of exported ADL failed: %v", derr)
	}

	// Replica counts and component sets match the live architecture.
	newNames := dep2.ComponentNames()
	sort.Strings(liveNames)
	sort.Strings(newNames)
	if strings.Join(liveNames, ",") != strings.Join(newNames, ",") {
		t.Fatalf("component sets differ:\nlive: %v\nredeployed: %v", liveNames, newNames)
	}
	newApp, newDB := replicaCounts(newNames)
	if newApp != liveApp || newDB != liveDB {
		t.Fatalf("replica counts differ: live app=%d db=%d, redeployed app=%d db=%d",
			liveApp, liveDB, newApp, newDB)
	}

	// Every component restarts on the same pinned node.
	for _, name := range newNames {
		liveNode, err := r.Deployment.NodeOf(name)
		if err != nil {
			t.Fatal(err)
		}
		newNode, err := dep2.NodeOf(name)
		if err != nil {
			t.Fatal(err)
		}
		if liveNode.Name() != newNode.Name() {
			t.Fatalf("%s redeployed on %s, was on %s", name, newNode.Name(), liveNode.Name())
		}
	}

	// Bindings match: exporting the redeployed system reproduces the
	// exported document binding-for-binding.
	again := dep2.ExportADL()
	bindingSet := func(d *ADLDefinition) []string {
		var out []string
		for _, b := range d.Bindings {
			out = append(out, b.Client+"->"+b.Server)
		}
		sort.Strings(out)
		return out
	}
	b1, b2 := bindingSet(def), bindingSet(again)
	if strings.Join(b1, ";") != strings.Join(b2, ";") {
		t.Fatalf("bindings differ after redeploy:\nexported:   %v\nredeployed: %v", b1, b2)
	}
	if len(b1) == 0 {
		t.Fatal("exported architecture has no bindings")
	}
}
