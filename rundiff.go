package jade

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"jade/internal/obs"
	"jade/internal/obs/attrib"
)

// RunDiffOptions tunes the tolerances of DiffRuns. Zero values select
// the defaults.
type RunDiffOptions struct {
	// RelTol is the relative tolerance for latency-budget components and
	// metric series (default 0.05). A budget component is flagged when
	// its request-weighted mean contribution moves by more than RelTol of
	// the baseline's end-to-end mean, so many small jitters don't mask —
	// or fake — a localized regression.
	RelTol float64
	// SLOTol is the absolute compliance-ratio drop that flags an
	// objective (default 0.01).
	SLOTol float64
	// BenchTol is the relative tolerance for ns/event benchmark entries
	// in BENCH_history.jsonl (default 0.10 — wall-clock noise is real).
	BenchTol float64
}

func (o RunDiffOptions) withDefaults() RunDiffOptions {
	if o.RelTol <= 0 {
		o.RelTol = 0.05
	}
	if o.SLOTol <= 0 {
		o.SLOTol = 0.01
	}
	if o.BenchTol <= 0 {
		o.BenchTol = 0.10
	}
	return o
}

// DiffFinding is one regression DiffRuns found: run B is worse than run
// A in the named section. A and B carry the compared values.
type DiffFinding struct {
	Section string  `json:"section"` // budget | slo | metrics | bench | artifact
	Name    string  `json:"name"`
	A       float64 `json:"a"`
	B       float64 `json:"b"`
	Detail  string  `json:"detail"`
}

// RunDiff is the result of comparing two run artifact directories.
type RunDiff struct {
	DirA, DirB string
	// Findings are the regressions (B worse than A), ordered by section
	// then severity. Empty means the runs are equivalent within
	// tolerance — same-seed runs diff clean.
	Findings []DiffFinding
	// Notes record non-regression observations: improvements, absent
	// artifacts, series counts.
	Notes []string
	// BlameTier/BlameComponent localize the dominant budget regression
	// (empty when the budgets are clean).
	BlameTier, BlameComponent string
}

// Clean reports whether no regression was found.
func (d *RunDiff) Clean() bool { return len(d.Findings) == 0 }

// Verdict is the one-line deterministic summary.
func (d *RunDiff) Verdict() string {
	if d.Clean() {
		return "verdict: clean"
	}
	if d.BlameTier != "" {
		return fmt.Sprintf("verdict: REGRESSION — %s/%s (%d findings)",
			d.BlameTier, d.BlameComponent, len(d.Findings))
	}
	return fmt.Sprintf("verdict: REGRESSION — %s %s (%d findings)",
		d.Findings[0].Section, d.Findings[0].Name, len(d.Findings))
}

// Render draws the full comparison transcript.
func (d *RunDiff) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "diff %s %s\n", d.DirA, d.DirB)
	for _, n := range d.Notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	for _, f := range d.Findings {
		fmt.Fprintf(&b, "  REGRESSION [%s] %s: %.4g -> %.4g (%s)\n", f.Section, f.Name, f.A, f.B, f.Detail)
	}
	b.WriteString(d.Verdict())
	b.WriteByte('\n')
	return b.String()
}

// DiffRuns compares two run artifact directories written by -metrics.dir
// (latency budgets, SLO reports, final metrics snapshots, and optional
// BENCH_history.jsonl entries) and returns a deterministic regression
// verdict: which sections regressed in B relative to A, with the
// dominant latency-budget delta localized to a tier and component.
func DiffRuns(dirA, dirB string, opt RunDiffOptions) (*RunDiff, error) {
	opt = opt.withDefaults()
	d := &RunDiff{DirA: dirA, DirB: dirB}
	for _, dir := range []string{dirA, dirB} {
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			return nil, fmt.Errorf("diff: %s is not a readable run directory", dir)
		}
	}
	d.diffBudgets(opt)
	d.diffSLO(opt)
	d.diffMetrics(opt)
	d.diffBench(opt)
	return d, nil
}

func readIfExists(path string) []byte {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	return raw
}

// pairNote records an artifact present on only one side: a finding,
// because the runs were not produced by comparable configurations.
func (d *RunDiff) pairNote(section, file string, a, b []byte) bool {
	switch {
	case a == nil && b == nil:
		d.Notes = append(d.Notes, fmt.Sprintf("%s: no %s in either run", section, file))
		return false
	case a == nil || b == nil:
		missing := d.DirA
		if b == nil {
			missing = d.DirB
		}
		d.Findings = append(d.Findings, DiffFinding{
			Section: "artifact", Name: file,
			Detail: fmt.Sprintf("present in one run only (missing under %s)", missing),
		})
		return false
	}
	return true
}

func (d *RunDiff) diffBudgets(opt RunDiffOptions) {
	rawA := readIfExists(filepath.Join(d.DirA, "latency_budget.json"))
	rawB := readIfExists(filepath.Join(d.DirB, "latency_budget.json"))
	if !d.pairNote("budget", "latency_budget.json", rawA, rawB) {
		return
	}
	a, errA := attrib.ParseReport(rawA)
	b, errB := attrib.ParseReport(rawB)
	if errA != nil || errB != nil {
		d.Findings = append(d.Findings, DiffFinding{Section: "budget", Name: "latency_budget.json",
			Detail: fmt.Sprintf("unparseable: %v / %v", errA, errB)})
		return
	}
	for _, side := range []struct {
		dir string
		r   *attrib.Report
	}{{d.DirA, a}, {d.DirB, b}} {
		if side.r.MaxConservationErr > 0.01 {
			d.Findings = append(d.Findings, DiffFinding{
				Section: "budget", Name: "conservation",
				A: 0.01, B: side.r.MaxConservationErr,
				Detail: fmt.Sprintf("components do not sum to the root span in %s", side.dir),
			})
		}
	}

	// Request-weighted mean contribution of every (tier, component)
	// across interaction classes — the run's end-to-end mean splits
	// exactly into these.
	contrib := func(r *attrib.Report) (map[string]float64, float64) {
		m := map[string]float64{}
		var reqs float64
		for _, p := range r.Profiles {
			reqs += float64(p.Requests)
			for _, c := range p.Components {
				m[c.Tier+"/"+c.Component] += float64(p.Requests) * c.MeanSec
			}
		}
		if reqs > 0 {
			for k := range m {
				m[k] /= reqs
			}
		}
		var total float64
		for _, v := range m {
			total += v
		}
		return m, total
	}
	ca, totalA := contrib(a)
	cb, totalB := contrib(b)
	if totalA <= 0 || totalB <= 0 {
		d.Notes = append(d.Notes, "budget: a run has no attributed requests, skipping component comparison")
		return
	}
	keys := map[string]bool{}
	for k := range ca {
		keys[k] = true
	}
	for k := range cb {
		keys[k] = true
	}
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	floor := opt.RelTol * totalA
	var worstDelta float64
	for _, k := range names {
		delta := cb[k] - ca[k]
		switch {
		case delta > floor:
			tier, comp, _ := strings.Cut(k, "/")
			d.Findings = append(d.Findings, DiffFinding{
				Section: "budget", Name: k, A: ca[k], B: cb[k],
				Detail: fmt.Sprintf("mean contribution +%.0f ms per request", 1000*delta),
			})
			if delta > worstDelta {
				worstDelta = delta
				d.BlameTier, d.BlameComponent = tier, comp
			}
		case delta < -floor:
			d.Notes = append(d.Notes, fmt.Sprintf("budget: %s improved by %.0f ms per request", k, -1000*delta))
		}
	}
	if totalB > totalA*(1+opt.RelTol) {
		d.Findings = append(d.Findings, DiffFinding{
			Section: "budget", Name: "end-to-end", A: totalA, B: totalB,
			Detail: fmt.Sprintf("mean latency +%.1f%%", 100*(totalB/totalA-1)),
		})
	} else if totalB < totalA*(1-opt.RelTol) {
		d.Notes = append(d.Notes, fmt.Sprintf("budget: end-to-end mean improved %.1f%%", 100*(1-totalB/totalA)))
	}
	// Tail check: the p99 percentile band's mean and blame.
	bandOf := func(r *attrib.Report, name string) *attrib.BandBlame {
		for i := range r.CriticalPath {
			if r.CriticalPath[i].Band == name {
				return &r.CriticalPath[i]
			}
		}
		return nil
	}
	ba, bb := bandOf(a, "p99"), bandOf(b, "p99")
	if ba != nil && bb != nil {
		if bb.MeanSec > ba.MeanSec*(1+opt.RelTol) {
			d.Findings = append(d.Findings, DiffFinding{
				Section: "budget", Name: "p99-band", A: ba.MeanSec, B: bb.MeanSec,
				Detail: fmt.Sprintf("tail mean +%.1f%%, dominated by %s/%s",
					100*(bb.MeanSec/ba.MeanSec-1), bb.Tier, bb.Component),
			})
			if d.BlameTier == "" {
				d.BlameTier, d.BlameComponent = bb.Tier, bb.Component
			}
		}
		if ba.Tier != bb.Tier || ba.Component != bb.Component {
			d.Notes = append(d.Notes, fmt.Sprintf("budget: p99 band blame moved %s/%s -> %s/%s",
				ba.Tier, ba.Component, bb.Tier, bb.Component))
		}
	}
}

func (d *RunDiff) diffSLO(opt RunDiffOptions) {
	rawA := readIfExists(filepath.Join(d.DirA, "slo_report.json"))
	rawB := readIfExists(filepath.Join(d.DirB, "slo_report.json"))
	if !d.pairNote("slo", "slo_report.json", rawA, rawB) {
		return
	}
	var a, b obs.SLOReport
	if json.Unmarshal(rawA, &a) != nil || json.Unmarshal(rawB, &b) != nil ||
		a.Schema != obs.SLOReportSchema || b.Schema != obs.SLOReportSchema {
		d.Findings = append(d.Findings, DiffFinding{Section: "slo", Name: "slo_report.json",
			Detail: "unparseable or wrong schema"})
		return
	}
	byName := func(r obs.SLOReport) map[string]obs.ObjectiveReport {
		m := make(map[string]obs.ObjectiveReport, len(r.Objectives))
		for _, o := range r.Objectives {
			m[o.Name] = o
		}
		return m
	}
	ma, mb := byName(a), byName(b)
	names := make([]string, 0, len(ma))
	for n := range ma {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		oa := ma[n]
		ob, ok := mb[n]
		if !ok {
			d.Findings = append(d.Findings, DiffFinding{Section: "slo", Name: n,
				Detail: "objective missing from run B"})
			continue
		}
		if oa.Compliance-ob.Compliance > opt.SLOTol {
			d.Findings = append(d.Findings, DiffFinding{
				Section: "slo", Name: n, A: oa.Compliance, B: ob.Compliance,
				Detail: fmt.Sprintf("compliance dropped %.1f points (tier %s)",
					100*(oa.Compliance-ob.Compliance), ob.Tier),
			})
		} else if ob.Compliance-oa.Compliance > opt.SLOTol {
			d.Notes = append(d.Notes, fmt.Sprintf("slo: %s compliance improved %.1f points",
				n, 100*(ob.Compliance-oa.Compliance)))
		}
	}
}

// latestSnapshot returns the lexicographically last metrics-t*.json in
// dir — snapshot names embed zero-padded virtual time, so this is the
// final snapshot.
func latestSnapshot(dir string) []byte {
	matches, err := filepath.Glob(filepath.Join(dir, "metrics-t*.json"))
	if err != nil || len(matches) == 0 {
		return nil
	}
	sort.Strings(matches)
	return readIfExists(matches[len(matches)-1])
}

// metricsScalars flattens a jade-metrics/v1 document into sorted
// (series, value) pairs: plain series as-is, histograms as
// _count/_sum/_p99 pseudo-series.
func metricsScalars(raw []byte) (map[string]float64, error) {
	var doc struct {
		Schema   string `json:"schema"`
		Families []struct {
			Name   string `json:"name"`
			Series []struct {
				Labels map[string]string `json:"labels"`
				Value  *float64          `json:"value"`
				Hist   *struct {
					Count uint64  `json:"count"`
					Sum   float64 `json:"sum"`
					P99   float64 `json:"p99"`
				} `json:"histogram"`
			} `json:"series"`
		} `json:"families"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, err
	}
	if doc.Schema != obs.MetricsJSONSchema {
		return nil, fmt.Errorf("schema %q, want %q", doc.Schema, obs.MetricsJSONSchema)
	}
	out := map[string]float64{}
	for _, f := range doc.Families {
		for _, s := range f.Series {
			keys := make([]string, 0, len(s.Labels))
			for k := range s.Labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			sig := f.Name
			if len(keys) > 0 {
				parts := make([]string, len(keys))
				for i, k := range keys {
					parts[i] = k + "=" + s.Labels[k]
				}
				sig += "{" + strings.Join(parts, ",") + "}"
			}
			switch {
			case s.Value != nil:
				out[sig] = *s.Value
			case s.Hist != nil:
				out[sig+"_count"] = float64(s.Hist.Count)
				out[sig+"_sum"] = s.Hist.Sum
				out[sig+"_p99"] = s.Hist.P99
			}
		}
	}
	return out, nil
}

func (d *RunDiff) diffMetrics(opt RunDiffOptions) {
	rawA, rawB := latestSnapshot(d.DirA), latestSnapshot(d.DirB)
	if !d.pairNote("metrics", "metrics-t*.json", rawA, rawB) {
		return
	}
	if bytes.Equal(rawA, rawB) {
		d.Notes = append(d.Notes, "metrics: final snapshots byte-identical")
		return
	}
	sa, errA := metricsScalars(rawA)
	sb, errB := metricsScalars(rawB)
	if errA != nil || errB != nil {
		d.Findings = append(d.Findings, DiffFinding{Section: "metrics", Name: "metrics-t*.json",
			Detail: fmt.Sprintf("unparseable: %v / %v", errA, errB)})
		return
	}
	keys := map[string]bool{}
	for k := range sa {
		keys[k] = true
	}
	for k := range sb {
		keys[k] = true
	}
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	differing := 0
	worst, worstName := 0.0, ""
	var worstA, worstB float64
	for _, k := range names {
		va, okA := sa[k]
		vb, okB := sb[k]
		if !okA || !okB {
			differing++
			continue
		}
		denom := math.Max(math.Max(math.Abs(va), math.Abs(vb)), 1e-9)
		rel := math.Abs(vb-va) / denom
		if rel > opt.RelTol {
			differing++
			if rel > worst {
				worst, worstName, worstA, worstB = rel, k, va, vb
			}
		}
	}
	if differing == 0 {
		d.Notes = append(d.Notes, "metrics: final snapshots equivalent within tolerance")
		return
	}
	d.Findings = append(d.Findings, DiffFinding{
		Section: "metrics", Name: worstName, A: worstA, B: worstB,
		Detail: fmt.Sprintf("%d series differ beyond %.0f%% (worst shown)", differing, 100*opt.RelTol),
	})
}

// BenchHistorySchema identifies one line of BENCH_history.jsonl — the
// append-only perf trajectory `jadebench -bench-validate` maintains.
const BenchHistorySchema = "jade-bench-history/v1"

// BenchHistoryEntry is one appended measurement: a validated
// BENCH_core.json document plus the wall-clock stamp of validation.
type BenchHistoryEntry struct {
	Schema  string          `json:"schema"`
	TimeUTC string          `json:"time_utc"`
	Source  string          `json:"source"` // the validated BENCH file
	Bench   json.RawMessage `json:"bench"`
}

// lastBenchEntry parses the final well-formed entry of a
// BENCH_history.jsonl stream.
func lastBenchEntry(raw []byte) *BenchHistoryEntry {
	var last *BenchHistoryEntry
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e BenchHistoryEntry
		if json.Unmarshal(line, &e) == nil && e.Schema == BenchHistorySchema {
			last = &e
		}
	}
	return last
}

func (d *RunDiff) diffBench(opt RunDiffOptions) {
	rawA := readIfExists(filepath.Join(d.DirA, "BENCH_history.jsonl"))
	rawB := readIfExists(filepath.Join(d.DirB, "BENCH_history.jsonl"))
	if rawA == nil && rawB == nil {
		return // bench history is optional; silence, not even a note
	}
	if !d.pairNote("bench", "BENCH_history.jsonl", rawA, rawB) {
		return
	}
	ea, eb := lastBenchEntry(rawA), lastBenchEntry(rawB)
	if ea == nil || eb == nil {
		d.Findings = append(d.Findings, DiffFinding{Section: "bench", Name: "BENCH_history.jsonl",
			Detail: "no well-formed entries"})
		return
	}
	var ba, bb map[string]any
	if json.Unmarshal(ea.Bench, &ba) != nil || json.Unmarshal(eb.Bench, &bb) != nil {
		d.Findings = append(d.Findings, DiffFinding{Section: "bench", Name: "BENCH_history.jsonl",
			Detail: "unparseable bench payload"})
		return
	}
	// Compare the cost-per-event fields; wall-clock throughput numbers
	// (events/sec, seeds/min) are the same signal inverted, so one
	// direction suffices.
	names := make([]string, 0, len(ba))
	for k := range ba {
		if strings.HasSuffix(k, "ns_per_event") {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	for _, k := range names {
		va, okA := ba[k].(float64)
		vb, okB := bb[k].(float64)
		if !okA || !okB || va <= 0 {
			continue
		}
		if vb > va*(1+opt.BenchTol) {
			d.Findings = append(d.Findings, DiffFinding{
				Section: "bench", Name: k, A: va, B: vb,
				Detail: fmt.Sprintf("+%.1f%% ns/event", 100*(vb/va-1)),
			})
		} else if vb < va*(1-opt.BenchTol) {
			d.Notes = append(d.Notes, fmt.Sprintf("bench: %s improved %.1f%%", k, 100*(1-vb/va)))
		}
	}
}
