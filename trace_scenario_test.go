package jade

import (
	"bytes"
	"fmt"
	"strconv"
	"testing"

	"jade/internal/trace"
)

// tracedScenario is a short managed run with request sampling on, shared
// by the determinism and well-formedness tests.
func tracedScenario(seed int64) ScenarioConfig {
	cfg := DefaultScenario(seed, true)
	cfg.Profile = ConstantProfile{Clients: 60, Length: 120}
	cfg.TraceRequests = 10
	return cfg
}

// Two runs at the same seed must export byte-identical JSONL: IDs are
// assigned in execution order and no wall-clock state leaks in.
func TestTraceJSONLByteIdentical(t *testing.T) {
	var dumps [][]byte
	for i := 0; i < 2; i++ {
		r, err := RunScenario(tracedScenario(3))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.Trace().WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		dumps = append(dumps, buf.Bytes())
	}
	if len(dumps[0]) == 0 {
		t.Fatal("empty JSONL export")
	}
	if !bytes.Equal(dumps[0], dumps[1]) {
		t.Fatalf("same-seed JSONL exports differ (%d vs %d bytes)", len(dumps[0]), len(dumps[1]))
	}
}

// Span trees must be well-formed (no dangling parents, no unclosed
// management spans at scenario end) across a seed sweep.
func TestTraceWellFormedSeedSweep(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		r, err := RunScenario(tracedScenario(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tr := r.Trace()
		if err := tr.WellFormed(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		st := tr.Stat()
		if st.Spans == 0 {
			t.Fatalf("seed %d: no spans recorded", seed)
		}
		if st.SpansDropped != 0 {
			t.Fatalf("seed %d: %d spans dropped", seed, st.SpansDropped)
		}
	}
}

// The paper's ramp scenario must leave a complete causal record of a
// tier resize: a sensor sample event, a decision span referencing it,
// and an actuate span nested under the decision that closed "ok" —
// plus at least one full request chain request→forward→app→sql. The
// Chrome trace export of the same run must validate.
func TestManagedResizeDecisionChain(t *testing.T) {
	cfg := DefaultScenario(1, true)
	cfg.Profile = RampProfile{Base: 80, Peak: 500, StepPerMinute: 105, HoldAtPeak: 60}
	cfg.TraceRequests = 25
	r, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Reconfigurations == 0 {
		t.Fatal("ramp scenario did not reconfigure; nothing to trace")
	}
	tr := r.Trace()
	if err := tr.WellFormed(); err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()
	byID := map[trace.ID]trace.Span{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	sampleEvents := map[trace.ID]bool{}
	for _, ev := range tr.ByKind("loop.sample") {
		sampleEvents[ev.ID] = true
	}
	if len(sampleEvents) == 0 {
		t.Fatal("no loop.sample events recorded")
	}

	field := func(s trace.Span, key string) (string, bool) {
		for _, f := range s.Fields {
			if f.Key == key {
				return f.Value, true
			}
		}
		return "", false
	}

	// One complete sensor → decision → actuation chain.
	chains := 0
	for _, s := range spans {
		if s.Kind != "actuate" || s.Open {
			continue
		}
		if out, _ := field(s, "outcome"); out != "ok" {
			continue
		}
		dec, ok := byID[s.Parent]
		if !ok || dec.Kind != "decision" {
			continue
		}
		raw, ok := field(dec, "sample")
		if !ok {
			continue
		}
		sid, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			t.Fatalf("decision sample field %q: %v", raw, err)
		}
		if !sampleEvents[trace.ID(sid)] {
			continue
		}
		chains++
	}
	if chains == 0 {
		t.Fatal("no complete sensor→decision→actuate chain found")
	}
	t.Logf("complete resize chains: %d", chains)

	// One complete request chain through all tiers.
	depthKinds := func(s trace.Span) string {
		kinds := ""
		for hop, cur := 0, s; hop < 16; hop++ {
			kinds = cur.Kind + "/" + kinds
			if cur.Parent == 0 {
				break
			}
			cur = byID[cur.Parent]
		}
		return kinds
	}
	requestChain := false
	for _, s := range spans {
		if s.Kind == "sql" && depthKinds(s) == "request/forward/app/sql/" {
			requestChain = true
			break
		}
	}
	if !requestChain {
		t.Fatal("no request→forward→app→sql chain found")
	}

	// The same run exports a valid Chrome trace.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty Chrome trace")
	}
}

// Invariant violations must carry the trace tail for post-mortems.
func TestHarnessViolationCarriesTraceTail(t *testing.T) {
	// Indirect check via the harness wiring: the scenario installs
	// p.Trace().Tail, so a synthetic tail request must render events.
	r, err := RunScenario(tracedScenario(5))
	if err != nil {
		t.Fatal(err)
	}
	tail := r.Trace().Tail(10)
	if len(tail) == 0 {
		t.Fatal("trace tail empty after a traced run")
	}
	for _, line := range tail {
		if line == "" {
			t.Fatal("blank line in trace tail")
		}
	}
	_ = fmt.Sprintf("%v", tail)
}
