package jade

import (
	"fmt"

	"jade/internal/invariant"
)

// Re-exported invariant-harness types.
type (
	// InvariantHarness evaluates checkers on a ticker and at
	// reconfiguration boundaries (enable via ScenarioConfig.Invariants).
	InvariantHarness = invariant.Harness
	// InvariantChecker is one registered invariant predicate.
	InvariantChecker = invariant.Checker
	// InvariantViolation is the first invariant failure of a run.
	InvariantViolation = invariant.Violation
	// ChaosEvent is one declarative failure-schedule action.
	ChaosEvent = invariant.Event
	// ChaosSchedule is a declarative failure schedule.
	ChaosSchedule = invariant.Schedule
	// SweepArtifact is a replayable record of a failing seed+schedule.
	SweepArtifact = invariant.Artifact
	// SweepOutcome is what one run reports to the sweep.
	SweepOutcome = invariant.Outcome
	// SweepResult summarizes a chaos sweep.
	SweepResult = invariant.SweepResult
)

// Chaos event kinds.
const (
	ChaosCrash  = invariant.Crash
	ChaosReboot = invariant.Reboot
	ChaosSlow   = invariant.Slow
	// ChaosPartition cuts the simulated network between the event's A
	// and B endpoint groups (requires NetworkConfig.Enabled).
	ChaosPartition = invariant.Partition
	// ChaosHeal removes every active partition.
	ChaosHeal = invariant.Heal
	// ChaosConfig applies the event's Patch as a live configuration
	// change through the run's refresh hub, so the sweep can hunt for
	// pathological mid-run retunes and the shrinker can minimize them.
	ChaosConfig = invariant.Config
)

// ParseSweepArtifact decodes an artifact written by `jadebench -sweep`.
func ParseSweepArtifact(data []byte) (*SweepArtifact, error) {
	return invariant.ParseArtifact(data)
}

// SweepRunner adapts RunScenario to the chaos sweep: each run copies the
// base configuration, substitutes the seed and schedule, and forces the
// invariant harness on.
func SweepRunner(base ScenarioConfig) invariant.Runner {
	return func(seed int64, schedule invariant.Schedule) (*invariant.Outcome, error) {
		cfg := base
		cfg.Seed = seed
		cfg.Invariants = true
		cfg.Chaos = schedule
		r, err := RunScenario(cfg)
		if err != nil {
			return nil, err
		}
		return &invariant.Outcome{Violation: r.InvariantViolation, Checks: r.InvariantChecks}, nil
	}
}

// ChaosSweepScenario is the sweep's base configuration: the Fig. 5
// scenario (managed, with recovery and arbitration) under a
// time-compressed ramp so a multi-seed sweep stays cheap. Pass speedup 1
// for the paper's full ~50-minute ramp.
func ChaosSweepScenario(speedup float64) ScenarioConfig {
	cfg := DefaultScenario(1, true)
	cfg.Recovery = true
	cfg.Arbitrate = true
	if speedup > 1 {
		ramp := PaperRamp()
		ramp.StepPerMinute = int(float64(ramp.StepPerMinute) * speedup)
		ramp.HoldAtPeak /= speedup
		cfg.Profile = ramp
	}
	return cfg
}

// DefaultCrashSchedule is the sweep's failure schedule, scaled to the
// profile length: each initial tier replica crashes mid-ramp and its node
// reboots 60 s later, and the database controller's node is slowed near
// the peak. Fractions of the profile duration keep the schedule
// meaningful under time compression.
func DefaultCrashSchedule(profileSeconds float64) ChaosSchedule {
	at := func(f float64) float64 { return profileSeconds * f }
	return ChaosSchedule{
		{At: at(0.20), Kind: ChaosCrash, Target: "tomcat1"},
		{At: at(0.20) + 60, Kind: ChaosReboot, Target: "tomcat1"},
		{At: at(0.45), Kind: ChaosCrash, Target: "mysql1"},
		{At: at(0.45) + 60, Kind: ChaosReboot, Target: "mysql1"},
		{At: at(0.55), Kind: ChaosSlow, Target: "cjdbc1", Duration: 45},
	}
}

// RunChaosSweep sweeps the Fig. 5 chaos scenario over seeds 1..seedCount
// at the given time compression, shrinking and returning a replayable
// artifact on the first violation. parallel is the worker count fanning
// seeds out (<= 0 uses Parallelism()); the result is deterministic
// regardless — the reported failure is always the lowest failing seed
// and shrinking replays stay single-threaded.
func RunChaosSweep(seedCount int, speedup float64, parallel int, logf func(string, ...any)) (*SweepResult, error) {
	if seedCount <= 0 {
		return nil, fmt.Errorf("jade: sweep needs at least one seed")
	}
	if parallel <= 0 {
		parallel = Parallelism()
	}
	base := ChaosSweepScenario(speedup)
	seeds := make([]int64, seedCount)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	sched := DefaultCrashSchedule(base.Profile.Duration())
	return invariant.Sweep(invariant.SweepConfig{Run: SweepRunner(base), Parallel: parallel, Logf: logf}, seeds, sched)
}

// ReplayArtifact re-runs a failing seed/schedule artifact against the
// same base scenario the sweep used and reports whether the recorded
// violation reproduces.
func ReplayArtifact(a *SweepArtifact, speedup float64) (*SweepOutcome, bool, error) {
	out, err := invariant.Replay(SweepRunner(ChaosSweepScenario(speedup)), a)
	if err != nil {
		return nil, false, err
	}
	reproduced := out.Violation != nil && a.Violation != nil && out.Violation.Checker == a.Violation.Checker
	return out, reproduced, nil
}
