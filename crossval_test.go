package jade

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

// TestFluidCrossValidation is the accuracy gate for the fluid workload
// engine, table-driven over seeds: on the paper scenario the managers
// must see tier CPU curves within ±5% RMS of the discrete engine's and
// take identical resize decision sequences.
func TestFluidCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation runs the paper scenario twice per seed")
	}
	for _, seed := range []int64{1, 2, 3, 5, 8} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			cv, err := FluidCrossValidation(seed, 4)
			if err != nil {
				t.Fatalf("FluidCrossValidation: %v", err)
			}
			if cv.AppCPURMS > 0.05 {
				t.Errorf("app CPU RMS %.4f exceeds 0.05", cv.AppCPURMS)
			}
			if cv.DBCPURMS > 0.05 {
				t.Errorf("db CPU RMS %.4f exceeds 0.05", cv.DBCPURMS)
			}
			if !cv.DecisionsMatch() {
				t.Errorf("resize decisions diverge:\napp fluid %v discrete %v\ndb  fluid %v discrete %v",
					cv.AppFluid, cv.AppDiscrete, cv.DBFluid, cv.DBDiscrete)
			}
			if cv.Fluid.Fluid == nil {
				t.Error("fluid run carried no fluid report")
			}
			if cv.Discrete.Fluid != nil {
				t.Error("discrete run unexpectedly carried a fluid report")
			}
		})
	}
}

// fluidArtifact runs a compressed paper scenario in fluid mode and
// returns the run's deterministic artifact: the fluid report plus the
// decision sequences and sampled-stream counters the experiment tables
// are built from.
func fluidArtifact(t *testing.T, seed int64) []byte {
	t.Helper()
	cfg := DefaultScenario(seed, true)
	cfg.WorkloadMode = WorkloadFluid
	r := PaperRamp()
	r.StepPerMinute = 21 * 8
	r.HoldAtPeak = 15
	cfg.Profile = r
	res, err := RunScenario(cfg)
	if err != nil {
		t.Fatalf("RunScenario(seed %d): %v", seed, err)
	}
	if res.Fluid == nil {
		t.Fatalf("seed %d: no fluid report", seed)
	}
	data, err := json.Marshal(struct {
		Fluid      *FluidReport `json:"fluid"`
		AppResizes []string     `json:"app_resizes"`
		DBResizes  []string     `json:"db_resizes"`
		Sampled    uint64       `json:"sampled_completed"`
		Events     uint64       `json:"events"`
	}{res.Fluid, resizeSequence(res.App.Replicas), resizeSequence(res.DB.Replicas),
		res.Stats.Completed, res.Platform.Eng.Processed()})
	if err != nil {
		t.Fatalf("marshal artifact: %v", err)
	}
	return data
}

// TestFluidDeterminism sweeps 20 seeds and asserts the fluid engine's
// run artifact is byte-identical when the same seed is run twice — the
// replay/debugging guarantee the discrete engine already carries.
func TestFluidDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism sweep runs 40 fluid scenarios")
	}
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			a := fluidArtifact(t, seed)
			b := fluidArtifact(t, seed)
			if !bytes.Equal(a, b) {
				t.Errorf("seed %d: artifact differs between identical runs:\n%s\nvs\n%s", seed, a, b)
			}
		})
	}
}
