package jade

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"jade/internal/netsim"
)

// Spec is the grouped scenario configuration: the same knobs as the flat
// ScenarioConfig, organized by concern (Workload, Faults, Sizing,
// Checks, Telemetry) with JSON round-tripping, defaults-on-zero
// semantics and a Validate method. New code and config files should use
// Spec; ScenarioConfig remains supported as the flattened form Spec
// compiles down to (see Flatten).
type Spec struct {
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64 `json:"seed,omitempty"`
	// Managed enables the self-optimization managers; Recovery
	// additionally arms the self-recovery manager.
	Managed  bool `json:"managed,omitempty"`
	Recovery bool `json:"recovery,omitempty"`

	Workload  WorkloadSpec  `json:"workload"`
	Faults    FaultsSpec    `json:"faults"`
	Sizing    SizingSpec    `json:"sizing"`
	Routing   RoutingSpec   `json:"routing"`
	Checks    ChecksSpec    `json:"checks"`
	Telemetry TelemetrySpec `json:"telemetry"`
	Alerting  AlertingSpec  `json:"alerting"`

	// Operator is the scripted live-configuration schedule: each event
	// applies a refreshable-config patch (the same JSON grammar the admin
	// /config endpoint accepts) at an exact virtual time, so headless
	// runs replay live retunes byte-identically. See docs/CONFIG.md.
	Operator OperatorSchedule `json:"operator,omitempty"`
}

// AlertingSpec groups the alerting plane's knobs. Everything defaults to
// the enabled configuration; Off turns rule evaluation off (the
// evaluation ticker still runs, so the trajectory is unchanged).
type AlertingSpec struct {
	// Off disables rule evaluation.
	Off bool `json:"off,omitempty"`
	// EvalIntervalSeconds is the rule evaluation period (5 by default).
	EvalIntervalSeconds float64 `json:"eval_interval_seconds,omitempty"`
	// FastWindowSeconds / SlowWindowSeconds are the burn-rate windows
	// (60 / 600 by default).
	FastWindowSeconds float64 `json:"fast_window_seconds,omitempty"`
	SlowWindowSeconds float64 `json:"slow_window_seconds,omitempty"`
	// BudgetFraction is the error budget (0.01 by default).
	BudgetFraction float64 `json:"budget_fraction,omitempty"`
	// PageBurn / WarnBurn are the burn-rate thresholds (14.4 / 3).
	PageBurn float64 `json:"page_burn,omitempty"`
	WarnBurn float64 `json:"warn_burn,omitempty"`
	// ZThreshold is the anomaly z-score trip point (4 by default).
	ZThreshold float64 `json:"z_threshold,omitempty"`
	// SkewFactor is the pool-skew multiplier (3 by default).
	SkewFactor float64 `json:"skew_factor,omitempty"`
	// HysteresisSeconds keeps a firing alert up until its condition has
	// been clear this long (30 by default).
	HysteresisSeconds float64 `json:"hysteresis_seconds,omitempty"`
	// MonitorReplicas arms the φ-accrual detector as a monitoring-only
	// signal source on unmanaged runs (requires faults.network.enabled);
	// suspicion history then feeds the incident timelines.
	MonitorReplicas bool `json:"monitor_replicas,omitempty"`
}

// Config compiles the spec to the alert plane's Config.
func (a AlertingSpec) Config() AlertConfig {
	return AlertConfig{
		Disabled:            a.Off,
		EvalIntervalSeconds: a.EvalIntervalSeconds,
		FastWindowSeconds:   a.FastWindowSeconds,
		SlowWindowSeconds:   a.SlowWindowSeconds,
		BudgetFraction:      a.BudgetFraction,
		PageBurn:            a.PageBurn,
		WarnBurn:            a.WarnBurn,
		ZThreshold:          a.ZThreshold,
		SkewFactor:          a.SkewFactor,
		HysteresisSeconds:   a.HysteresisSeconds,
	}
}

// RoutingSpec groups the backend-selection policies of the balancing
// tiers. Policy, when set, applies to every tier; the per-tier fields
// override it. Empty fields keep the historic defaults
// (weighted-round-robin L4, round-robin PLB, least-pending C-JDBC).
type RoutingSpec struct {
	// Policy is the default policy for all tiers; see RoutingPolicies.
	Policy string `json:"policy,omitempty"`
	// L4, App and DB override Policy per tier.
	L4  string `json:"l4,omitempty"`
	App string `json:"app,omitempty"`
	DB  string `json:"db,omitempty"`
	// ProbeAfterSeconds is how long a suspected-down backend stays out of
	// rotation before a probe request tests it (10 by default).
	ProbeAfterSeconds float64 `json:"probe_after_seconds,omitempty"`
	// HalfLifeSeconds is the decay half-life of the balanced scorer's
	// failure/latency reservoirs (30 by default).
	HalfLifeSeconds float64 `json:"half_life_seconds,omitempty"`
}

// Config compiles the spec to the flat per-tier RoutingConfig.
func (r RoutingSpec) Config() RoutingConfig {
	pick := func(tier string) string {
		if tier != "" {
			return tier
		}
		return r.Policy
	}
	return RoutingConfig{
		L4:                pick(r.L4),
		App:               pick(r.App),
		DB:                pick(r.DB),
		ProbeAfterSeconds: r.ProbeAfterSeconds,
		HalfLifeSeconds:   r.HalfLifeSeconds,
	}
}

// ProfileSpec selects a client population profile declaratively.
type ProfileSpec struct {
	// Kind is "paper-ramp" (default), "constant" or "ramp".
	Kind string `json:"kind,omitempty"`
	// Clients and DurationSeconds parameterize "constant".
	Clients         int     `json:"clients,omitempty"`
	DurationSeconds float64 `json:"duration_seconds,omitempty"`
	// Base, Peak, StepPerMinute and HoldAtPeakSeconds parameterize
	// "ramp" (zero fields take the paper's values).
	Base              int     `json:"base,omitempty"`
	Peak              int     `json:"peak,omitempty"`
	StepPerMinute     int     `json:"step_per_minute,omitempty"`
	HoldAtPeakSeconds float64 `json:"hold_at_peak_seconds,omitempty"`
}

// Profile materializes the declarative profile.
func (ps ProfileSpec) Profile() (Profile, error) {
	switch ps.Kind {
	case "", "paper-ramp":
		return PaperRamp(), nil
	case "constant":
		clients, dur := ps.Clients, ps.DurationSeconds
		if clients <= 0 {
			clients = 100
		}
		if dur <= 0 {
			dur = 600
		}
		return ConstantProfile{Clients: clients, Length: dur}, nil
	case "ramp":
		r := PaperRamp()
		if ps.Base > 0 {
			r.Base = ps.Base
		}
		if ps.Peak > 0 {
			r.Peak = ps.Peak
		}
		if ps.StepPerMinute > 0 {
			r.StepPerMinute = ps.StepPerMinute
		}
		if ps.HoldAtPeakSeconds > 0 {
			r.HoldAtPeak = ps.HoldAtPeakSeconds
		}
		return r, nil
	}
	return nil, fmt.Errorf("jade: unknown profile kind %q (want paper-ramp, constant or ramp)", ps.Kind)
}

// WorkloadSpec groups what the clients do.
type WorkloadSpec struct {
	// Profile is the client population profile (paper-ramp by default).
	Profile ProfileSpec `json:"profile"`
	// Mix is "bidding" (default) or "browsing".
	Mix string `json:"mix,omitempty"`
	// Sessions switches the emulator to RUBiS-style Markov sessions.
	Sessions bool `json:"sessions,omitempty"`
	// ThinkTimeSeconds is the mean client think time (7 by default).
	ThinkTimeSeconds float64 `json:"think_time_seconds,omitempty"`
	// DrainSeconds extends the run after the profile ends (60 default).
	DrainSeconds float64 `json:"drain_seconds,omitempty"`
	// Mode selects the workload engine: "discrete" (default), "fluid"
	// or "auto" (fluid above FluidAutoClients peak population).
	Mode string `json:"mode,omitempty"`
	// FluidTickSeconds is the fluid model's virtual tick (1 default).
	FluidTickSeconds float64 `json:"fluid_tick_seconds,omitempty"`
	// FluidSampleRate is the fraction of clients kept as real discrete
	// request chains in fluid mode (0.02 default).
	FluidSampleRate float64 `json:"fluid_sample_rate,omitempty"`
	// FluidMinSampled floors the sampled population (8 default).
	FluidMinSampled int `json:"fluid_min_sampled,omitempty"`
}

// PartitionSpec is one declarative network partition: at At seconds
// after workload start, cut group A from group B (B empty: from
// everyone else) for DurationSeconds (0: until the end of the run).
type PartitionSpec struct {
	At              float64  `json:"at"`
	DurationSeconds float64  `json:"duration_seconds,omitempty"`
	A               []string `json:"a"`
	B               []string `json:"b,omitempty"`
}

// FaultsSpec groups everything that goes wrong on purpose.
type FaultsSpec struct {
	// MTBFSeconds, when positive, injects random replica-node crashes.
	MTBFSeconds float64 `json:"mtbf_seconds,omitempty"`
	// FailAt/FailComponent crash one component's node at a fixed time.
	FailAt        float64 `json:"fail_at,omitempty"`
	FailComponent string  `json:"fail_component,omitempty"`
	// Chaos is the declarative crash/reboot/slow/partition schedule.
	Chaos ChaosSchedule `json:"chaos,omitempty"`
	// Partition is sugar for Chaos partition events: each entry cuts the
	// simulated network between its A and B groups. Requires
	// Network.Enabled.
	Partition []PartitionSpec `json:"partition,omitempty"`
	// Network enables and configures the simulated network fabric.
	Network netsim.Config `json:"network"`
}

// SizingSpec groups cluster and control-loop sizing.
type SizingSpec struct {
	// Nodes is the cluster size (9 by default).
	Nodes int `json:"nodes,omitempty"`
	// App and DB parameterize the two sizing loops.
	App SizingConfig `json:"app"`
	DB  SizingConfig `json:"db"`
	// MaxAppReplicas / MaxDBReplicas cap the tiers (2 and 3 by default
	// when managed).
	MaxAppReplicas int `json:"max_app_replicas,omitempty"`
	MaxDBReplicas  int `json:"max_db_replicas,omitempty"`
	// ThrashThreshold / ThrashFactor configure node overload behavior.
	ThrashThreshold int     `json:"thrash_threshold,omitempty"`
	ThrashFactor    float64 `json:"thrash_factor,omitempty"`
	// NodeCPU overrides per-node CPU capacity (1.0 default).
	NodeCPU float64 `json:"node_cpu,omitempty"`
	// Arbitrate replaces the shared inhibitor with the arbitration
	// manager.
	Arbitrate bool `json:"arbitrate,omitempty"`
}

// ChecksSpec groups run-time validation.
type ChecksSpec struct {
	// Invariants enables the invariant-checking harness.
	Invariants bool `json:"invariants,omitempty"`
	// InvariantPeriodSeconds is the harness ticker period (1 default).
	InvariantPeriodSeconds float64 `json:"invariant_period_seconds,omitempty"`
	// SLOIntervalSeconds is the SLO evaluation window (10 default).
	SLOIntervalSeconds float64 `json:"slo_interval_seconds,omitempty"`
	// SLOTargets overrides objective bounds by name (e.g.
	// "client-latency-p95": 1.5) and is refreshable at runtime: a /config
	// patch or operator event replaces an objective's finite bound
	// mid-run.
	SLOTargets map[string]float64 `json:"slo_targets,omitempty"`
}

// TelemetrySpec groups observability outputs.
type TelemetrySpec struct {
	// TraceRequests samples every N-th client request into the causal
	// span store (0: management events only).
	TraceRequests int `json:"trace_requests,omitempty"`
	// TraceOff disables the telemetry bus entirely.
	TraceOff bool `json:"trace_off,omitempty"`
	// MetricsDir/MetricsIntervalSeconds write periodic snapshots.
	MetricsDir             string  `json:"metrics_dir,omitempty"`
	MetricsIntervalSeconds float64 `json:"metrics_interval_seconds,omitempty"`
	// HTTPAddr serves the live admin endpoint.
	HTTPAddr string `json:"http_addr,omitempty"`
}

// DefaultSpec mirrors DefaultScenario in grouped form: the paper's §5.2
// configuration.
func DefaultSpec(seed int64, managed bool) Spec {
	return Spec{
		Seed:    seed,
		Managed: managed,
		Workload: WorkloadSpec{
			Profile:          ProfileSpec{Kind: "paper-ramp"},
			Mix:              "bidding",
			ThinkTimeSeconds: 7,
			DrainSeconds:     60,
		},
		Sizing: SizingSpec{
			Nodes:           9,
			App:             AppSizingDefaults(),
			DB:              DBSizingDefaults(),
			MaxAppReplicas:  2,
			MaxDBReplicas:   3,
			ThrashThreshold: 60,
			ThrashFactor:    0.08,
		},
	}
}

// Validate checks the spec for contradictions before a run. Zero values
// are fine everywhere (they take defaults); Validate flags what defaults
// cannot repair. Failures come back as a *ValidationError carrying one
// FieldError per offending knob, each located by its JSON field path
// ("sizing.app.max: must be > sizing.app.min") — the same structured
// errors the admin /config POST returns as its 400 body and jadectl
// renders for -config files.
func (s Spec) Validate() error {
	var ve ValidationError
	if _, err := s.Workload.Profile.Profile(); err != nil {
		ve.addf("workload.profile.kind", "unknown profile kind %q (want paper-ramp, constant or ramp)", s.Workload.Profile.Kind)
	}
	switch s.Workload.Mix {
	case "", "bidding", "browsing":
	default:
		ve.addf("workload.mix", "unknown mix %q (want bidding or browsing)", s.Workload.Mix)
	}
	if s.Workload.ThinkTimeSeconds < 0 {
		ve.addf("workload.think_time_seconds", "must be >= 0, got %g", s.Workload.ThinkTimeSeconds)
	}
	switch s.Workload.Mode {
	case "", WorkloadDiscrete, WorkloadFluid, WorkloadAuto:
	default:
		ve.addf("workload.mode", "unknown workload mode %q (want discrete, fluid or auto)", s.Workload.Mode)
	}
	if s.Workload.FluidTickSeconds < 0 {
		ve.addf("workload.fluid_tick_seconds", "must be >= 0, got %g", s.Workload.FluidTickSeconds)
	}
	if s.Workload.FluidSampleRate < 0 || s.Workload.FluidSampleRate > 1 {
		ve.addf("workload.fluid_sample_rate", "must be within [0,1], got %g", s.Workload.FluidSampleRate)
	}
	if s.Sizing.NodeCPU < 0 {
		ve.addf("sizing.node_cpu", "must be >= 0, got %g", s.Sizing.NodeCPU)
	}
	if s.Sizing.Nodes < 0 {
		ve.addf("sizing.nodes", "must be >= 0, got %d", s.Sizing.Nodes)
	}
	for _, tier := range []struct {
		path string
		cfg  SizingConfig
	}{{"sizing.app", s.Sizing.App}, {"sizing.db", s.Sizing.DB}} {
		if tier.cfg.Min < 0 {
			ve.addf(tier.path+".min", "must be >= 0, got %g", tier.cfg.Min)
		}
		if tier.cfg.Max != 0 && tier.cfg.Max <= tier.cfg.Min {
			ve.addf(tier.path+".max", "must be > %s.min (%g), got %g", tier.path, tier.cfg.Min, tier.cfg.Max)
		}
		if tier.cfg.InhibitSeconds < 0 {
			ve.addf(tier.path+".inhibit_seconds", "must be >= 0, got %g", tier.cfg.InhibitSeconds)
		}
	}
	n := s.Faults.Network
	if n.Default.Loss < 0 || n.Default.Loss >= 1 {
		ve.addf("faults.network.default.loss", "must be within [0,1), got %g", n.Default.Loss)
	}
	for key, l := range n.Links {
		if l.Loss < 0 || l.Loss >= 1 {
			ve.addf("faults.network.links["+key+"].loss", "must be within [0,1), got %g", l.Loss)
		}
	}
	if len(s.Faults.Partition) > 0 && !n.Enabled {
		ve.addf("faults.partition", "requires faults.network.enabled")
	}
	for i, ps := range s.Faults.Partition {
		if len(ps.A) == 0 {
			ve.addf(fmt.Sprintf("faults.partition[%d].a", i), "must name at least one endpoint")
		}
		if ps.At < 0 || ps.DurationSeconds < 0 {
			ve.addf(fmt.Sprintf("faults.partition[%d]", i), "timing must be >= 0")
		}
	}
	for i, ev := range s.Faults.Chaos {
		switch ev.Kind {
		case ChaosCrash, ChaosReboot, ChaosSlow, ChaosHeal:
		case ChaosPartition:
			if !n.Enabled {
				ve.addf(fmt.Sprintf("faults.chaos[%d]", i), "partition requires faults.network.enabled")
			}
			if len(ev.A) == 0 {
				ve.addf(fmt.Sprintf("faults.chaos[%d].a", i), "must name at least one endpoint")
			}
		case ChaosConfig:
			if err := CheckPatch(ev.Patch); err != nil {
				for _, fe := range AsValidationError(err) {
					ve.addf(joinPath(fmt.Sprintf("faults.chaos[%d].patch", i), fe.Path), "%s", fe.Msg)
				}
			}
		default:
			ve.addf(fmt.Sprintf("faults.chaos[%d].kind", i), "unknown kind %q", ev.Kind)
		}
	}
	if s.Recovery && !s.Managed {
		ve.addf("recovery", "requires managed")
	}
	for _, tier := range []struct{ path, policy string }{
		{"routing.policy", s.Routing.Policy},
		{"routing.l4", s.Routing.L4},
		{"routing.app", s.Routing.App},
		{"routing.db", s.Routing.DB},
	} {
		if tier.policy == "" {
			continue
		}
		if _, err := ParseRoutingPolicy(tier.policy); err != nil {
			ve.addf(tier.path, "unknown policy %q (want one of %v)", tier.policy, RoutingPolicies())
		}
	}
	if s.Routing.ProbeAfterSeconds < 0 {
		ve.addf("routing.probe_after_seconds", "must be >= 0, got %g", s.Routing.ProbeAfterSeconds)
	}
	if s.Routing.HalfLifeSeconds < 0 {
		ve.addf("routing.half_life_seconds", "must be >= 0, got %g", s.Routing.HalfLifeSeconds)
	}
	for name, target := range s.Checks.SLOTargets {
		if target <= 0 {
			ve.addf("checks.slo_targets["+name+"]", "must be > 0, got %g", target)
		}
	}
	a := s.Alerting
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"alerting.eval_interval_seconds", a.EvalIntervalSeconds},
		{"alerting.fast_window_seconds", a.FastWindowSeconds},
		{"alerting.slow_window_seconds", a.SlowWindowSeconds},
		{"alerting.budget_fraction", a.BudgetFraction},
		{"alerting.page_burn", a.PageBurn},
		{"alerting.warn_burn", a.WarnBurn},
		{"alerting.z_threshold", a.ZThreshold},
		{"alerting.skew_factor", a.SkewFactor},
		{"alerting.hysteresis_seconds", a.HysteresisSeconds},
	} {
		if f.v < 0 {
			ve.addf(f.name, "must be >= 0, got %g", f.v)
		}
	}
	if a.FastWindowSeconds > 0 && a.SlowWindowSeconds > 0 && a.FastWindowSeconds > a.SlowWindowSeconds {
		ve.addf("alerting.fast_window_seconds", "must be <= slow window (%g), got %g", a.SlowWindowSeconds, a.FastWindowSeconds)
	}
	if a.PageBurn > 0 && a.WarnBurn > 0 && a.WarnBurn > a.PageBurn {
		ve.addf("alerting.warn_burn", "must be <= page burn (%g), got %g", a.PageBurn, a.WarnBurn)
	}
	if a.BudgetFraction > 1 {
		ve.addf("alerting.budget_fraction", "must be <= 1, got %g", a.BudgetFraction)
	}
	if a.MonitorReplicas && !s.Faults.Network.Enabled {
		ve.addf("alerting.monitor_replicas", "requires faults.network.enabled")
	}
	for i, ev := range s.Operator {
		if ev.At < 0 {
			ve.addf(fmt.Sprintf("operator[%d].at", i), "must be >= 0, got %g", ev.At)
		}
		if err := CheckPatch(ev.Patch); err != nil {
			for _, fe := range AsValidationError(err) {
				ve.addf(joinPath(fmt.Sprintf("operator[%d].patch", i), fe.Path), "%s", fe.Msg)
			}
		}
	}
	return ve.or()
}

// joinPath nests an inner field path under an outer one.
func joinPath(outer, inner string) string {
	if inner == "" {
		return outer
	}
	return outer + "." + inner
}

// Flatten compiles the grouped spec down to the flat ScenarioConfig the
// runner executes (the compatibility shim: everything expressible as a
// Spec is expressible as a ScenarioConfig). Partition entries become
// chaos partition events.
func (s Spec) Flatten() (ScenarioConfig, error) {
	if err := s.Validate(); err != nil {
		return ScenarioConfig{}, err
	}
	profile, err := s.Workload.Profile.Profile()
	if err != nil {
		return ScenarioConfig{}, err
	}
	var mix *Mix
	if s.Workload.Mix == "browsing" {
		mix = BrowsingMix()
	}
	chaos := append(ChaosSchedule(nil), s.Faults.Chaos...)
	for _, ps := range s.Faults.Partition {
		chaos = append(chaos, ChaosEvent{
			At:       ps.At,
			Kind:     ChaosPartition,
			Duration: ps.DurationSeconds,
			A:        append([]string(nil), ps.A...),
			B:        append([]string(nil), ps.B...),
		})
	}
	cfg := ScenarioConfig{
		Seed:            s.Seed,
		Managed:         s.Managed,
		Recovery:        s.Recovery,
		Profile:         profile,
		Mix:             mix,
		ThinkTime:       s.Workload.ThinkTimeSeconds,
		Sessions:        s.Workload.Sessions,
		DrainSeconds:    s.Workload.DrainSeconds,
		WorkloadMode:    s.Workload.Mode,
		FluidTick:       s.Workload.FluidTickSeconds,
		FluidSampleRate: s.Workload.FluidSampleRate,
		FluidMinSampled: s.Workload.FluidMinSampled,
		NodeCPU:         s.Sizing.NodeCPU,
		MTBFSeconds:     s.Faults.MTBFSeconds,
		FailAt:          s.Faults.FailAt,
		FailComponent:   s.Faults.FailComponent,
		Chaos:           chaos,
		Net:             s.Faults.Network,
		Nodes:           s.Sizing.Nodes,
		AppSizing:       s.Sizing.App,
		DBSizing:        s.Sizing.DB,
		MaxAppReplicas:  s.Sizing.MaxAppReplicas,
		MaxDBReplicas:   s.Sizing.MaxDBReplicas,
		ThrashThreshold: s.Sizing.ThrashThreshold,
		ThrashFactor:    s.Sizing.ThrashFactor,
		Arbitrate:       s.Sizing.Arbitrate,
		Routing:         s.Routing.Config(),
		Invariants:      s.Checks.Invariants,
		InvariantPeriod: s.Checks.InvariantPeriodSeconds,
		SLOInterval:     s.Checks.SLOIntervalSeconds,
		SLOTargets:      s.Checks.SLOTargets,
		Operator:        s.Operator,
		TraceRequests:   s.Telemetry.TraceRequests,
		TraceOff:        s.Telemetry.TraceOff,
		MetricsDir:      s.Telemetry.MetricsDir,
		MetricsInterval: s.Telemetry.MetricsIntervalSeconds,
		HTTPAddr:        s.Telemetry.HTTPAddr,
		Alerting:        s.Alerting.Config(),
		Monitor:         s.Alerting.MonitorReplicas,
	}
	if s.Managed && cfg.MaxAppReplicas == 0 {
		cfg.MaxAppReplicas = 2
	}
	if s.Managed && cfg.MaxDBReplicas == 0 {
		cfg.MaxDBReplicas = 3
	}
	return cfg, nil
}

// RunSpec validates, flattens and runs the spec.
func RunSpec(s Spec) (*ScenarioResult, error) {
	cfg, err := s.Flatten()
	if err != nil {
		return nil, err
	}
	return RunScenario(cfg)
}

// ParseSpec decodes a JSON run spec, rejecting unknown fields so config
// typos surface as errors instead of silently-defaulted knobs.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("jade: parsing run spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadSpec reads a JSON run spec from disk (jadectl scenario -config).
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	s, err := ParseSpec(data)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
