package jade

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"jade/internal/metrics"
)

// LiveRetuneResult carries the live-reconfiguration experiment's runs
// and self-check measurements (see RunLiveRetune).
type LiveRetuneResult struct {
	// Control keeps round-robin routing for the whole gray-failure run.
	Control *ScenarioResult
	// Retuned starts identically but an operator patch swaps every
	// tier's selector to "balanced" mid-run, with zero restarts.
	Retuned *ScenarioResult
	// ControlP99/RetunedP99 are client p99 latencies (seconds) over the
	// post-swap comparison window only.
	ControlP99, RetunedP99 float64
	// Improvement is ControlP99/RetunedP99.
	Improvement float64
	// ReplayIdentical reports whether a same-seed re-run of the retuned
	// variant produced a byte-identical trace and config-change log.
	ReplayIdentical bool
	// Managed is the mid-ramp threshold-retune run.
	Managed *ScenarioResult
}

// liveRetuneMinImprovement is the self-check floor: swapping the
// selector away from round-robin while a gray failure is active must at
// least halve the post-swap tail latency.
const liveRetuneMinImprovement = 2.0

// LiveRetuneScenario returns the gray-failure run used by the live-
// retune experiment: round-robin routing everywhere, with an operator
// config patch at swapAt (virtual seconds after workload start) that
// swaps every tier's selector to "balanced" — the same change an
// operator would POST to /config on a live deployment. retune=false
// omits the patch, yielding the control run.
func LiveRetuneScenario(seed int64, quick, retune bool) (cfg ScenarioConfig, swapAt, settle float64) {
	cfg = GrayFailureScenario(seed, "round-robin", quick)
	swapAt, settle = 120, 30
	if quick {
		swapAt, settle = 60, 20
	}
	if retune {
		cfg.Operator = OperatorSchedule{
			{At: swapAt, Patch: json.RawMessage(`{"routing":{"policy":"balanced"}}`)},
		}
	}
	return cfg, swapAt, settle
}

// liveRetuneManagedScenario is the threshold-retune run: a compressed
// managed ramp where an operator patch mid-ramp tightens the app tier's
// CPU thresholds — the knobs of the paper's self-optimization loop —
// without restarting the control loop.
func liveRetuneManagedScenario(seed int64) (ScenarioConfig, float64) {
	cfg := DefaultScenario(seed, true)
	cfg.Profile = RampProfile{Base: 40, Peak: 200, StepPerMinute: 150, HoldAtPeak: 60}
	retuneAt := 90.0
	cfg.Operator = OperatorSchedule{
		{At: retuneAt, Patch: json.RawMessage(`{"sizing":{"app":{"min":0.30,"max":0.60}}}`)},
	}
	return cfg, retuneAt
}

// windowP99 returns the 99th-percentile completed-request latency over
// [t0, t1) of virtual time.
func windowP99(r *ScenarioResult, t0, t1 float64) float64 {
	vs := windowValues(r.Stats.Latency, t0, t1)
	sort.Float64s(vs)
	return metrics.Percentile(vs, 0.99)
}

// traceFingerprint renders the run's full telemetry bus plus its
// config-change log as bytes, for replay byte-identity checks.
func traceFingerprint(r *ScenarioResult) ([]byte, error) {
	var buf bytes.Buffer
	if err := r.Trace().WriteJSONL(&buf); err != nil {
		return nil, err
	}
	changes, err := json.Marshal(r.ConfigChanges)
	if err != nil {
		return nil, err
	}
	buf.Write(changes)
	return buf.Bytes(), nil
}

// appliedOperatorChanges counts config changes that were accepted and
// originated from the operator schedule.
func appliedOperatorChanges(r *ScenarioResult) int {
	n := 0
	for _, c := range r.ConfigChanges {
		if c.Source == "operator" && c.Error == "" {
			n++
		}
	}
	return n
}

// RunLiveRetune is the live-reconfiguration experiment: the same
// gray-failure scenario as RunGrayFailure, except the cluster *starts*
// on the pathological round-robin policy and an operator config patch
// swaps every tier's selector to "balanced" halfway through — over the
// same code path as a POST to the admin plane's /config endpoint, with
// zero restarts. The run self-checks that
//
//   - the post-swap p99 improves at least 2x over the control run that
//     never retunes,
//   - the swap triggered no reconfigurations, repairs, or restarts,
//   - a same-seed replay (including the mid-run config change) is
//     byte-identical in both trace and config-change log, and
//   - a managed ramp accepts a mid-run sizing-threshold patch that the
//     live reactor observably adopts (trace carries the config span).
//
// quick shrinks the runs for smoke tests.
func RunLiveRetune(seed int64, quick bool) (*LiveRetuneResult, string, error) {
	controlCfg, _, _ := LiveRetuneScenario(seed, quick, false)
	retuneCfg, swapAt, settle := LiveRetuneScenario(seed, quick, true)
	replayCfg, _, _ := LiveRetuneScenario(seed, quick, true)
	managedCfg, retuneAt := liveRetuneManagedScenario(seed + 1)

	cfgs := []ScenarioConfig{controlCfg, retuneCfg, replayCfg, managedCfg}
	runs := make([]*ScenarioResult, len(cfgs))
	errs := make([]error, len(cfgs))
	_ = forEachPar(len(cfgs), func(i int) error {
		r, err := RunScenario(cfgs[i])
		if err != nil {
			errs[i] = fmt.Errorf("liveretune run %d: %w", i, err)
			return errs[i]
		}
		runs[i] = r
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return nil, "", err
		}
	}
	res := &LiveRetuneResult{Control: runs[0], Retuned: runs[1], Managed: runs[3]}
	replay := runs[2]

	length := controlCfg.Profile.Duration()
	t0 := res.Retuned.WorkloadStart + swapAt + settle
	t1 := res.Retuned.WorkloadStart + length
	res.ControlP99 = windowP99(res.Control, t0, t1)
	res.RetunedP99 = windowP99(res.Retuned, t0, t1)
	if res.RetunedP99 > 0 {
		res.Improvement = res.ControlP99 / res.RetunedP99
	}

	// Self-check: the live swap must pay off without any restart.
	if res.Improvement < liveRetuneMinImprovement {
		return nil, "", fmt.Errorf("liveretune: post-swap p99 improved only %.2fx (control %.3fs vs retuned %.3fs), want >= %.1fx",
			res.Improvement, res.ControlP99, res.RetunedP99, liveRetuneMinImprovement)
	}
	for _, v := range []struct {
		name string
		r    *ScenarioResult
	}{{"control", res.Control}, {"retuned", res.Retuned}} {
		if v.r.Reconfigurations != 0 || v.r.Repairs != 0 || v.r.InjectedFailures != 0 {
			return nil, "", fmt.Errorf("liveretune: %s run restarted something (reconfigs=%d repairs=%d crashes=%d), want zero",
				v.name, v.r.Reconfigurations, v.r.Repairs, v.r.InjectedFailures)
		}
	}
	if got := appliedOperatorChanges(res.Retuned); got != 1 {
		return nil, "", fmt.Errorf("liveretune: retuned run applied %d operator config changes, want 1 (log: %+v)",
			got, res.Retuned.ConfigChanges)
	}
	if got := len(res.Control.ConfigChanges); got != 0 {
		return nil, "", fmt.Errorf("liveretune: control run logged %d config changes, want 0", got)
	}

	// Self-check: same seed + same schedule replays byte-identically.
	a, err := traceFingerprint(res.Retuned)
	if err != nil {
		return nil, "", err
	}
	b, err := traceFingerprint(replay)
	if err != nil {
		return nil, "", err
	}
	res.ReplayIdentical = bytes.Equal(a, b)
	if !res.ReplayIdentical {
		return nil, "", fmt.Errorf("liveretune: same-seed replay with mid-run config change is not byte-identical (%d vs %d bytes)", len(a), len(b))
	}

	// Self-check: the managed reactor adopted the mid-ramp thresholds
	// and the change is visible as a config span on the telemetry bus.
	if got := appliedOperatorChanges(res.Managed); got != 1 {
		return nil, "", fmt.Errorf("liveretune: managed run applied %d operator config changes, want 1", got)
	}
	reactor := res.Managed.AppManager.Reactor
	if reactor.Min != 0.30 || reactor.Max != 0.60 {
		return nil, "", fmt.Errorf("liveretune: app reactor thresholds (%.2f, %.2f) after retune, want (0.30, 0.60)",
			reactor.Min, reactor.Max)
	}
	configSpans := 0
	for _, sp := range res.Managed.Trace().Spans() {
		if sp.Kind == "config" {
			configSpans++
		}
	}
	if configSpans == 0 {
		return nil, "", fmt.Errorf("liveretune: managed run has no config span on the telemetry bus")
	}

	title := fmt.Sprintf("Live retune under gray failure (RR -> balanced at t=%.0f s, window [%.0f, %.0f) s after start)",
		swapAt, swapAt+settle, length)
	tb := &TextTable{
		Title:   title,
		Headers: []string{"variant", "window p99 (s)", "overall p99 (s)", "completed", "failed", "config changes", "restarts"},
	}
	for _, v := range []struct {
		name string
		p99  float64
		r    *ScenarioResult
	}{
		{"control (RR throughout)", res.ControlP99, res.Control},
		{"retuned (swap to balanced)", res.RetunedP99, res.Retuned},
	} {
		tb.AddRow(v.name,
			fmt.Sprintf("%.3f", v.p99),
			fmt.Sprintf("%.3f", v.r.RequestLatency.Quantile(0.99)),
			fmt.Sprintf("%d", v.r.Stats.Completed),
			fmt.Sprintf("%d", v.r.Stats.Failed),
			fmt.Sprintf("%d", len(v.r.ConfigChanges)),
			"0")
	}
	out := tb.Render()
	out += fmt.Sprintf("\npost-swap p99 improvement: %.1fx (self-check floor %.1fx); same-seed replay byte-identical: %v\n",
		res.Improvement, liveRetuneMinImprovement, res.ReplayIdentical)
	out += fmt.Sprintf("managed mid-ramp retune at t=%.0f s: app thresholds now (%.2f, %.2f), %d config span(s) traced, %d reconfigurations\n",
		retuneAt, reactor.Min, reactor.Max, configSpans, res.Managed.Reconfigurations)
	return res, out, nil
}
