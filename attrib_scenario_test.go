package jade

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"jade/internal/obs/attrib"
)

// attribSweepScenario is the short traced run the attribution sweep
// repeats per seed: every fourth request traced, artifacts exported.
func attribSweepScenario(seed int64, dir string) ScenarioConfig {
	cfg := DefaultScenario(seed, true)
	cfg.Profile = ConstantProfile{Clients: 60, Length: 120}
	cfg.TraceRequests = 4
	cfg.MetricsDir = dir
	return cfg
}

// TestAttribConservationSweep: over 20 seeds, every attributed request's
// components must sum back to its root span within 1% (the budget's
// conservation check), and two same-seed runs — racing in parallel
// subtests — must write byte-identical latency_budget.json artifacts.
func TestAttribConservationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("20-seed sweep")
	}
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			var budgets [2][]byte
			for i := 0; i < 2; i++ {
				dir := t.TempDir()
				r, err := RunScenario(attribSweepScenario(seed, dir))
				if err != nil {
					t.Fatal(err)
				}
				a := r.Attribution
				if a == nil || len(a.Breakdowns) == 0 {
					t.Fatal("no attributed requests")
				}
				for i := range a.Breakdowns {
					br := &a.Breakdowns[i]
					if br.ConservationErr() > 0.01 {
						t.Fatalf("request %s at t=%.1f: components do not sum to the %.6f s root span (err %.2e > 1%%)",
							br.Interaction, br.Start, br.Total, br.ConservationErr())
					}
				}
				budgets[i], err = os.ReadFile(filepath.Join(dir, "latency_budget.json"))
				if err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(budgets[0], budgets[1]) {
				t.Fatalf("latency_budget.json differs between same-seed runs (%d vs %d bytes)",
					len(budgets[0]), len(budgets[1]))
			}
			rep, err := ParseLatencyBudget(budgets[0])
			if err != nil {
				t.Fatalf("latency_budget.json invalid: %v", err)
			}
			if rep.Requests == 0 || len(rep.Profiles) == 0 || len(rep.CriticalPath) == 0 {
				t.Fatalf("budget report is empty: %d requests, %d profiles, %d bands",
					rep.Requests, len(rep.Profiles), len(rep.CriticalPath))
			}
			if blame, ok := rep.Dominant("p99"); !ok || blame.Tier == "" || blame.Component == "" {
				t.Fatalf("p99 band has no dominant blame (ok=%v, %+v)", ok, blame)
			}
		})
	}
}

// TestAttribWindowPartition: splitting a run's attribution at an interior
// time must partition the requests — no request lost or double-counted —
// so the experiment's pre/post-resize reports cover exactly the run.
func TestAttribWindowPartition(t *testing.T) {
	r, err := RunScenario(attribSweepScenario(7, ""))
	if err != nil {
		t.Fatal(err)
	}
	a := r.Attribution
	if a == nil || len(a.Breakdowns) == 0 {
		t.Fatal("no attributed requests")
	}
	mid := (r.WorkloadStart + r.WorkloadEnd) / 2
	pre := attrib.BuildReport(a.Window(math.Inf(-1), mid), nil)
	post := attrib.BuildReport(a.Window(mid, math.Inf(1)), nil)
	if pre.Requests == 0 || post.Requests == 0 {
		t.Fatalf("degenerate split: %d pre, %d post", pre.Requests, post.Requests)
	}
	if got := pre.Requests + post.Requests; got != len(a.Breakdowns) {
		t.Fatalf("window split lost requests: %d + %d != %d", pre.Requests, post.Requests, len(a.Breakdowns))
	}
}
