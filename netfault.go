package jade

import "fmt"

// NetFaultVariant is one network-fault setting of the managed-recovery
// comparison (see RunNetFault).
type NetFaultVariant struct {
	Name   string
	Result *ScenarioResult
}

// netFaultBase is the shared scenario of the network-fault experiment: a
// managed, recovering, invariant-checked constant-load run with every
// inter-tier call and heartbeat on the simulated network.
func netFaultBase(seed int64) Spec {
	s := DefaultSpec(seed, true)
	s.Recovery = true
	s.Workload.Profile = ProfileSpec{Kind: "constant", Clients: 40, DurationSeconds: 240}
	s.Checks.Invariants = true
	s.Faults.Network.Enabled = true
	return s
}

// RunNetFault runs the managed recovery scenario under increasingly
// hostile network conditions — message loss, a heartbeat partition, and
// a real replica crash — and reports what the φ-accrual detector got
// right, what it got wrong, and whether every resulting repair was legal
// (the double-repair invariant confirmed the discarded replica dead).
func RunNetFault(seed int64) ([]NetFaultVariant, string, error) {
	variants := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"healthy network", func(*Spec) {}},
		{"loss 0.5%", func(s *Spec) { s.Faults.Network.Default.Loss = 0.005 }},
		{"loss 2%", func(s *Spec) { s.Faults.Network.Default.Loss = 0.02 }},
		{"partition 30s (heartbeats)", func(s *Spec) {
			s.Faults.Partition = []PartitionSpec{{At: 60, DurationSeconds: 30, A: []string{"tomcat1"}, B: []string{ManagementEndpoint}}}
		}},
		{"crash replica at 60s", func(s *Spec) {
			s.Faults.Chaos = ChaosSchedule{{At: 60, Kind: ChaosCrash, Target: "tomcat1"}}
		}},
		{"crash + loss 0.5%", func(s *Spec) {
			s.Faults.Network.Default.Loss = 0.005
			s.Faults.Chaos = ChaosSchedule{{At: 60, Kind: ChaosCrash, Target: "tomcat1"}}
		}},
	}

	tb := &TextTable{
		Title: "Managed recovery under network faults (constant 40 clients, 240 s)",
		Headers: []string{"network", "suspicions", "true/false", "detect lat (s)",
			"repairs", "legal", "failed req", "violation"},
	}
	out := make([]NetFaultVariant, 0, len(variants))
	for _, v := range variants {
		s := netFaultBase(seed)
		v.mutate(&s)
		r, err := RunSpec(s)
		if err != nil {
			return nil, "", fmt.Errorf("netfault %q: %w", v.name, err)
		}
		out = append(out, NetFaultVariant{Name: v.name, Result: r})
		det := r.Detector
		lat := "-"
		if det.TruePositives > 0 {
			lat = fmt.Sprintf("%.1f", det.MeanDetectionLatency())
		}
		violation := "none"
		if r.InvariantViolation != nil {
			violation = r.InvariantViolation.Checker
		}
		tb.AddRow(v.name,
			fmt.Sprintf("%d", det.Suspicions),
			fmt.Sprintf("%d/%d", det.TruePositives, det.FalsePositives),
			lat,
			fmt.Sprintf("%d", r.Repairs),
			fmt.Sprintf("%d/%d", r.RepairsConfirmedLegal, r.RepairDiscards),
			fmt.Sprintf("%d", r.Stats.Failed),
			violation)
	}
	return out, tb.Render(), nil
}
