package jade

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"jade/internal/obs"
)

func shortObsScenario(seed int64) ScenarioConfig {
	cfg := DefaultScenario(seed, true)
	cfg.Profile = ConstantProfile{Clients: 60, Length: 120}
	return cfg
}

// readSnapshots returns filename -> contents for every metrics snapshot
// in dir.
func readSnapshots(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

func sameSnapshots(t *testing.T, a, b map[string][]byte) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("snapshot counts differ: %d vs %d", len(a), len(b))
	}
	for name, data := range a {
		other, ok := b[name]
		if !ok {
			t.Fatalf("snapshot %s missing from second run", name)
		}
		if !bytes.Equal(data, other) {
			t.Fatalf("snapshot %s differs between runs", name)
		}
	}
}

// TestMetricsSnapshotDeterminism: two same-seed runs write byte-identical
// snapshot files, and every file validates against its exposition format.
func TestMetricsSnapshotDeterminism(t *testing.T) {
	run := func() map[string][]byte {
		dir := t.TempDir()
		cfg := shortObsScenario(11)
		cfg.MetricsDir = dir
		cfg.MetricsInterval = 30
		if _, err := RunScenario(cfg); err != nil {
			t.Fatal(err)
		}
		return readSnapshots(t, dir)
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no snapshot files written")
	}
	sameSnapshots(t, a, b)
	for name, data := range a {
		switch {
		case name == "alerts.jsonl":
			if _, err := ValidateAlertsJSONL(data); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		case name == "incidents.json":
			if err := ValidateIncidentsJSON(data); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		case name == "slo_report.json":
			var rep SLOReport
			if err := json.Unmarshal(data, &rep); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if rep.Schema != obs.SLOReportSchema {
				t.Fatalf("%s: schema %q, want %q", name, rep.Schema, obs.SLOReportSchema)
			}
		case name == "latency_budget.json":
			if _, err := ParseLatencyBudget(data); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		case name == "fluid.json":
			if err := ValidateFluidPage(data); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		case name == "config.json":
			if _, err := ParseConfigSnapshot(data); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		case strings.HasSuffix(name, ".prom"):
			if _, err := ValidatePrometheusText(data); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		case strings.HasSuffix(name, ".json"):
			if _, err := ValidateMetricsJSON(data); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		default:
			t.Fatalf("unexpected snapshot file %s", name)
		}
	}
}

// TestLiveScraperDoesNotPerturbRun: a same-seed run with concurrent HTTP
// scrapers hammering the admin endpoint produces the same trajectory —
// request counts, processed events, SLO report, and byte-identical
// snapshot files — as a run with no endpoint at all. Run under -race this
// also proves the reader/simulation isolation.
func TestLiveScraperDoesNotPerturbRun(t *testing.T) {
	run := func(scrape bool) (*ScenarioResult, map[string][]byte) {
		dir := t.TempDir()
		cfg := shortObsScenario(12)
		cfg.MetricsDir = dir
		cfg.MetricsInterval = 30
		var wg sync.WaitGroup
		stop := make(chan struct{})
		if scrape {
			cfg.HTTPAddr = "127.0.0.1:0"
			cfg.AdminReady = func(addr string) {
				for i := 0; i < 4; i++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							select {
							case <-stop:
								return
							default:
							}
							for _, p := range []string{"/metrics", "/metrics.json", "/components", "/loops", "/healthz", "/alerts", "/incidents"} {
								resp, err := http.Get("http://" + addr + p)
								if err != nil {
									continue
								}
								io.Copy(io.Discard, resp.Body)
								resp.Body.Close()
							}
						}
					}()
				}
			}
		}
		res, err := RunScenario(cfg)
		close(stop)
		wg.Wait()
		if res != nil && res.Admin != nil {
			res.Admin.Close()
		}
		if err != nil {
			t.Fatal(err)
		}
		return res, readSnapshots(t, dir)
	}
	plain, plainSnaps := run(false)
	scraped, scrapedSnaps := run(true)

	if plain.Stats.Completed != scraped.Stats.Completed || plain.Stats.Failed != scraped.Stats.Failed {
		t.Fatalf("request counts differ: (%d, %d) vs (%d, %d)",
			plain.Stats.Completed, plain.Stats.Failed, scraped.Stats.Completed, scraped.Stats.Failed)
	}
	if p1, p2 := plain.Platform.Eng.Processed(), scraped.Platform.Eng.Processed(); p1 != p2 {
		t.Fatalf("processed event counts differ: %d vs %d", p1, p2)
	}
	if r1, r2 := plain.SLOReport.Render(), scraped.SLOReport.Render(); r1 != r2 {
		t.Fatalf("SLO reports differ:\n%s\nvs\n%s", r1, r2)
	}
	sameSnapshots(t, plainSnaps, scrapedSnaps)
}

// TestScenarioSLOReportPopulated: the default objectives evaluate against
// a healthy run and report full compliance with real intervals.
func TestScenarioSLOReportPopulated(t *testing.T) {
	cfg := shortObsScenario(13)
	res, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.SLOReport
	if rep == nil || len(rep.Objectives) != len(DefaultSLOs()) {
		t.Fatalf("SLO report = %+v", rep)
	}
	evaluated := 0
	for _, o := range rep.Objectives {
		evaluated += o.Intervals
	}
	if evaluated == 0 {
		t.Fatal("no SLO intervals evaluated")
	}
	if !rep.Compliant() {
		t.Fatalf("healthy run should be compliant:\n%s", rep.Render())
	}
	if res.RequestLatency == nil || res.RequestLatency.Count() == 0 {
		t.Fatal("request latency histogram empty")
	}
	if p50, p99 := res.RequestLatency.Quantile(0.5), res.RequestLatency.Quantile(0.99); p50 <= 0 || p99 < p50 {
		t.Fatalf("implausible latency quantiles: p50=%g p99=%g", p50, p99)
	}
}
