package jade

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"jade/internal/refresh"
)

func testConfigRuntime() *configRuntime {
	alerting := AlertConfig{
		FastWindowSeconds: 300, SlowWindowSeconds: 3600, BudgetFraction: 0.1,
		PageBurn: 14, WarnBurn: 6, ZThreshold: 3, SkewFactor: 2, HysteresisSeconds: 120,
	}
	return newConfigRuntime(refresh.NewHub(nil),
		AppSizingDefaults(), DBSizingDefaults(),
		RoutingConfig{App: "round-robin", DB: "least-pending"},
		map[string]RPCBudget{"app": {TimeoutSeconds: 2, Attempts: 3, BackoffSeconds: 0.1}},
		map[string]float64{"client-latency-p95": 2.0},
		alerting)
}

// TestConfigPatchValidationErrors: rejected patches carry structured
// field paths, the same ones the /config endpoint returns as JSON.
func TestConfigPatchValidationErrors(t *testing.T) {
	rt := testConfigRuntime()
	cases := []struct {
		name  string
		patch string
		paths []string // every path must appear among the field errors
	}{
		{"unknown top-level field", `{"wibble": 1}`, []string{"wibble"}},
		{"unknown nested field", `{"sizing":{"app":{"inhibit": 5}}}`, []string{"inhibit"}},
		{"bad policy name", `{"routing":{"app":"fastest"}}`, []string{"routing.app"}},
		{"max below min", `{"sizing":{"app":{"max":0.2}}}`, []string{"sizing.app.max"}},
		{"negative inhibit", `{"sizing":{"db":{"inhibit_seconds":-1}}}`, []string{"sizing.db.inhibit_seconds"}},
		{"windows out of order", `{"alerting":{"fast_window_seconds":7200}}`, []string{"alerting.fast_window_seconds"}},
		{"bad slo target", `{"checks":{"slo_targets":{"client-latency-p95":-1}}}`, []string{"checks.slo_targets[client-latency-p95]"}},
		{"negative rpc budget", `{"faults":{"network":{"rpc":{"app":{"timeout_seconds":-2}}}}}`, []string{"faults.network.rpc[app].timeout_seconds"}},
		{"empty patch", `{}`, []string{""}},
		{"malformed json", `{"sizing":`, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := rt.check("test", []byte(tc.patch))
			if err == nil {
				t.Fatalf("patch %s validated, want rejection", tc.patch)
			}
			fields := AsValidationError(err)
			if len(fields) == 0 {
				t.Fatalf("no structured fields in %v", err)
			}
			for _, want := range tc.paths {
				found := false
				for _, f := range fields {
					if f.Path == want {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("no field error with path %q in %v", want, fields)
				}
			}
		})
	}
	// Valid patches resolve clean against the same runtime.
	for _, patch := range []string{
		`{"routing":{"policy":"balanced"}}`,
		`{"sizing":{"app":{"min":0.3,"max":0.7}}}`,
		`{"alerting":{"page_burn":20}}`,
		`{"checks":{"slo_targets":{"client-latency-p95":1.5}}}`,
	} {
		if err := rt.check("test", []byte(patch)); err != nil {
			t.Fatalf("valid patch %s rejected: %v", patch, err)
		}
	}
}

// liveConfigSweepScenario is a short managed run whose operator schedule
// exercises every refreshable group mid-run.
func liveConfigSweepScenario(seed int64) ScenarioConfig {
	cfg := DefaultScenario(seed, true)
	cfg.Profile = ConstantProfile{Clients: 40, Length: 90}
	cfg.Operator = OperatorSchedule{
		{At: 20, Patch: json.RawMessage(`{"sizing":{"app":{"min":0.30,"max":0.70}},"checks":{"slo_targets":{"client-latency-p95":1.5}}}`)},
		{At: 35, Patch: json.RawMessage(`{"routing":{"policy":"balanced","half_life_seconds":20}}`)},
		{At: 50, Patch: json.RawMessage(`{"alerting":{"page_burn":20,"warn_burn":8},"faults":{"network":{"rpc":{"app":{"timeout_seconds":2,"attempts":2,"backoff_seconds":0.2}}}}}`)},
	}
	return cfg
}

// TestConfigDeterminismSweep: 20 seeds, each run twice with mid-run
// config changes touching every refreshable group; the full telemetry
// bus and config-change log must be byte-identical between same-seed
// runs.
func TestConfigDeterminismSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("20-seed sweep in -short mode")
	}
	const seeds = 20
	errs := make([]error, seeds)
	_ = forEachPar(seeds, func(i int) error {
		seed := int64(100 + i)
		run := func() ([]byte, error) {
			r, err := RunScenario(liveConfigSweepScenario(seed))
			if err != nil {
				return nil, err
			}
			if got := appliedOperatorChanges(r); got != 3 {
				return nil, fmt.Errorf("%d/3 operator changes applied: %+v", got, r.ConfigChanges)
			}
			return traceFingerprint(r)
		}
		a, err := run()
		if err != nil {
			errs[i] = fmt.Errorf("seed %d: %w", seed, err)
			return errs[i]
		}
		b, err := run()
		if err != nil {
			errs[i] = fmt.Errorf("seed %d: %w", seed, err)
			return errs[i]
		}
		if !bytes.Equal(a, b) {
			errs[i] = fmt.Errorf("seed %d: same-seed runs with mid-run config changes diverge (%d vs %d fingerprint bytes)", seed, len(a), len(b))
			return errs[i]
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestNoopRefreshTrajectoryNeutral: applying a patch that rewrites
// refreshable values to what they already are must not perturb the
// workload trajectory — same request counts, same latency series, same
// SLO report as a run with no patch at all. (Routing is excluded: a
// policy write rebuilds the selector, which is a real change.)
func TestNoopRefreshTrajectoryNeutral(t *testing.T) {
	base := func(seed int64) ScenarioConfig {
		cfg := DefaultScenario(seed, true)
		cfg.Profile = ConstantProfile{Clients: 40, Length: 90}
		return cfg
	}
	plain, err := RunScenario(base(7))
	if err != nil {
		t.Fatal(err)
	}
	noop := base(7)
	app, db := AppSizingDefaults(), DBSizingDefaults()
	noop.Operator = OperatorSchedule{{At: 30, Patch: json.RawMessage(fmt.Sprintf(
		`{"sizing":{"app":{"min":%g,"max":%g,"inhibit_seconds":%g},"db":{"min":%g,"max":%g,"inhibit_seconds":%g}}}`,
		app.Min, app.Max, app.InhibitSeconds, db.Min, db.Max, db.InhibitSeconds))}}
	patched, err := RunScenario(noop)
	if err != nil {
		t.Fatal(err)
	}
	if got := appliedOperatorChanges(patched); got != 1 {
		t.Fatalf("no-op patch not applied: %+v", patched.ConfigChanges)
	}
	if plain.Stats.Completed != patched.Stats.Completed || plain.Stats.Failed != patched.Stats.Failed {
		t.Fatalf("request counts differ: (%d, %d) vs (%d, %d)",
			plain.Stats.Completed, plain.Stats.Failed, patched.Stats.Completed, patched.Stats.Failed)
	}
	if plain.Reconfigurations != patched.Reconfigurations {
		t.Fatalf("reconfigurations differ: %d vs %d", plain.Reconfigurations, patched.Reconfigurations)
	}
	a, b := plain.Stats.Latency.Points, patched.Stats.Latency.Points
	if len(a) != len(b) {
		t.Fatalf("latency series lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("latency point %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if r1, r2 := plain.SLOReport.Render(), patched.SLOReport.Render(); r1 != r2 {
		t.Fatalf("SLO reports differ:\n%s\nvs\n%s", r1, r2)
	}
}

// TestConfigPostRoundTrip: a live patch POSTed to /config before the
// run starts is accepted (202), applied at the first drain tick with
// source "admin", and visible in the GET /config document; an invalid
// patch is rejected (400) with field paths; once the run completes the
// endpoint freezes (409).
func TestConfigPostRoundTrip(t *testing.T) {
	cfg := DefaultScenario(21, true)
	cfg.Profile = ConstantProfile{Clients: 30, Length: 60}
	cfg.HTTPAddr = "127.0.0.1:0"
	var adminAddr string
	post := func(body string) (int, configPostResponse) {
		resp, err := http.Post("http://"+adminAddr+"/config", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		var pr configPostResponse
		if err := json.Unmarshal(data, &pr); err != nil {
			t.Fatalf("response %q: %v", data, err)
		}
		return resp.StatusCode, pr
	}
	cfg.AdminReady = func(addr string) {
		adminAddr = addr
		// Valid patch: accepted for the next drain tick.
		if code, pr := post(`{"routing":{"policy":"balanced"}}`); code != 202 || pr.Status != "accepted" {
			t.Errorf("valid POST: status %d %+v, want 202 accepted", code, pr)
		}
		// Invalid patch: structured 400 with the offending field path.
		code, pr := post(`{"routing":{"app":"fastest"}}`)
		if code != 400 || pr.Status != "rejected" {
			t.Errorf("invalid POST: status %d %+v, want 400 rejected", code, pr)
		}
		if len(pr.Fields) == 0 || pr.Fields[0].Path != "routing.app" {
			t.Errorf("invalid POST fields = %+v, want path routing.app", pr.Fields)
		}
	}
	res, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Admin.Close()

	applied := 0
	for _, c := range res.ConfigChanges {
		if c.Source == "admin" && c.Error == "" {
			applied++
		}
	}
	if applied != 1 {
		t.Fatalf("admin changes applied = %d, want 1 (log: %+v)", applied, res.ConfigChanges)
	}

	// The published /config document reflects the committed change.
	resp, err := http.Get("http://" + adminAddr + "/config")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ParseConfigSnapshot(data)
	if err != nil {
		t.Fatalf("GET /config: %v\n%s", err, data)
	}
	if snap.Refreshable.Routing.App != "balanced" || snap.Refreshable.Routing.DB != "balanced" {
		t.Fatalf("GET /config routing = %+v, want balanced", snap.Refreshable.Routing)
	}
	if len(snap.Applied) != 1 || snap.Applied[0].Source != "admin" {
		t.Fatalf("GET /config applied = %+v, want one admin change", snap.Applied)
	}

	// The run is over: the hub is closed and the endpoint frozen.
	if code, pr := post(`{"routing":{"policy":"round-robin"}}`); code != 409 || pr.Status != "rejected" {
		t.Fatalf("post-run POST: status %d %+v, want 409 rejected", code, pr)
	}
}

// TestChaosConfigEvent: the chaos schedule's "config" kind injects a
// live patch through the same hub, logged with source "chaos", and the
// sweep grammar round-trips the patch.
func TestChaosConfigEvent(t *testing.T) {
	cfg := DefaultScenario(31, true)
	cfg.Profile = ConstantProfile{Clients: 30, Length: 60}
	cfg.Chaos = ChaosSchedule{
		{At: 20, Kind: ChaosConfig, Patch: json.RawMessage(`{"sizing":{"app":{"max":0.65}}}`)},
		{At: 30, Kind: ChaosConfig, Patch: json.RawMessage(`{"routing":{"app":"fastest"}}`)}, // invalid: rejected, run continues
	}
	res, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var applied, rejected int
	for _, c := range res.ConfigChanges {
		if c.Source != "chaos" {
			t.Fatalf("unexpected change source %q", c.Source)
		}
		if c.Error == "" {
			applied++
		} else {
			rejected++
		}
	}
	if applied != 1 || rejected != 1 {
		t.Fatalf("chaos changes applied=%d rejected=%d, want 1/1 (log: %+v)", applied, rejected, res.ConfigChanges)
	}
	if got := res.AppManager.Reactor.Max; got != 0.65 {
		t.Fatalf("app reactor max = %g after chaos config event, want 0.65", got)
	}
	// The chaos event round-trips through the sweep artifact grammar.
	data, err := json.Marshal(cfg.Chaos)
	if err != nil {
		t.Fatal(err)
	}
	var back ChaosSchedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back[0].Kind != ChaosConfig || string(back[0].Patch) != `{"sizing":{"app":{"max":0.65}}}` {
		t.Fatalf("chaos config event did not round-trip: %+v", back[0])
	}
}

// TestLiveRetuneQuick runs the full self-checking experiment once in
// quick mode.
func TestLiveRetuneQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("liveretune in -short mode")
	}
	res, out, err := RunLiveRetune(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Improvement < liveRetuneMinImprovement || !res.ReplayIdentical {
		t.Fatalf("liveretune self-checks regressed:\n%s", out)
	}
}
