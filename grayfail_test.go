package jade

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"jade/internal/core"
	"jade/internal/selector"
)

// routedScenario is a short traced run with every tier forced onto one
// routing policy, shared by the per-policy determinism sweep.
func routedScenario(seed int64, policy string) ScenarioConfig {
	cfg := DefaultScenario(seed, true)
	cfg.Profile = ConstantProfile{Clients: 40, Length: 60}
	cfg.TraceRequests = 10
	cfg.Routing = RoutingConfig{L4: policy, App: policy, DB: policy}
	return cfg
}

// TestRoutingPolicyDeterminismSweep extends the 20-seed byte-identical
// sweep across the selector policies: every (seed, policy) pair must
// export the same JSONL trace twice. Seeds rotate through the policies
// so all five are exercised without quintupling the sweep.
func TestRoutingPolicyDeterminismSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("20-seed sweep")
	}
	policies := RoutingPolicies()
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		policy := policies[int(seed)%len(policies)]
		t.Run(fmt.Sprintf("seed%d-%s", seed, policy), func(t *testing.T) {
			t.Parallel()
			var dumps [2][]byte
			for i := range dumps {
				r, err := RunScenario(routedScenario(seed, policy))
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := r.Trace().WriteJSONL(&buf); err != nil {
					t.Fatal(err)
				}
				dumps[i] = buf.Bytes()
			}
			if len(dumps[0]) == 0 {
				t.Fatal("empty JSONL export")
			}
			if !bytes.Equal(dumps[0], dumps[1]) {
				t.Fatalf("same-seed exports differ (%d vs %d bytes)", len(dumps[0]), len(dumps[1]))
			}
		})
	}
}

// TestGrayFailureBalancedBeatsRoundRobin is the experiment's headline
// claim: with one crawling Tomcat and one slowed MySQL replica — alive,
// heartbeating, invisible to any failure detector — the balanced scorer
// must hold p99 at least 2x below round-robin's.
func TestGrayFailureBalancedBeatsRoundRobin(t *testing.T) {
	if testing.Short() {
		t.Skip("full-length gray-failure run")
	}
	variants, _, err := RunGrayFailure(1, false)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]GrayFailVariant{}
	for _, v := range variants {
		if v.Result.InvariantViolation != nil {
			t.Fatalf("%s: invariant violation: %v", v.Name, v.Result.InvariantViolation)
		}
		if v.Result.Stats.Completed == 0 {
			t.Fatalf("%s: no requests completed", v.Name)
		}
		byName[v.Name] = v
	}
	rr, ok1 := byName["round-robin"]
	bal, ok2 := byName["balanced"]
	if !ok1 || !ok2 {
		t.Fatalf("missing variants: %v", byName)
	}
	if rr.P99 < 2*bal.P99 {
		t.Fatalf("balanced p99 not 2x better: round-robin %.3fs vs balanced %.3fs", rr.P99, bal.P99)
	}
}

// TestGrayFailureParallelismInvariance: the quick gray-failure variant
// table must be byte-identical whether the variants run sequentially or
// fanned over four workers.
func TestGrayFailureParallelismInvariance(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	var tables [2]string
	for i, workers := range []int{1, 4} {
		SetParallelism(workers)
		_, table, err := RunGrayFailure(7, true)
		if err != nil {
			t.Fatal(err)
		}
		tables[i] = table
	}
	if tables[0] != tables[1] {
		t.Fatalf("gray-failure table depends on -parallel:\n%s\nvs\n%s", tables[0], tables[1])
	}
}

// TestRoutingPoolConcurrentObservers runs a quick gray-failure scenario
// while a goroutine hammers the live selector pools' read-only
// observers, proving (under -race) that introspection never perturbs or
// races the simulation, which is the pools' sole mutator.
func TestRoutingPoolConcurrentObservers(t *testing.T) {
	cfg := GrayFailureScenario(3, "balanced", true)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	cfg.Chaos = append(cfg.Chaos, ChaosEvent{At: 5, Kind: "observe-pools"})
	cfg.ChaosHandler = func(res *ScenarioResult, ev ChaosEvent) bool {
		if ev.Kind != "observe-pools" {
			return false
		}
		plbPool := res.Deployment.MustComponent("plb1").Content().(*core.PLBWrapper).Balancer().Pool()
		dbPool := res.Deployment.MustComponent("cjdbc1").Content().(*core.CJDBCWrapper).Controller().Pool()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, p := range []*selector.Pool{plbPool, dbPool} {
					_ = p.Snapshot()
					_ = p.Pendings()
					_ = p.Names()
					_ = p.Len()
				}
			}
		}()
		return true
	}
	r, err := RunScenario(cfg)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if r.InvariantViolation != nil {
		t.Fatalf("invariant violation: %v", r.InvariantViolation)
	}
	if r.Stats.Completed == 0 {
		t.Fatal("no requests completed")
	}
}

// TestStickySessionsSurviveRepair is the regression test for the
// sticky-session-to-fenced-node bug: rendezvous affinity on both tiers,
// Markov sessions, and a crash+reboot of each pinned replica under the
// recovery manager. Before the fix, the PLB session table and the
// C-JDBC read pool kept routing to the fenced replica after its repair,
// which the double-repair and balancer-agreement invariants now catch.
func TestStickySessionsSurviveRepair(t *testing.T) {
	cfg := DefaultScenario(11, true)
	cfg.Profile = ConstantProfile{Clients: 80, Length: 300}
	cfg.Sessions = true
	cfg.Recovery = true
	cfg.Arbitrate = true
	cfg.Invariants = true
	cfg.Routing = RoutingConfig{App: "rendezvous", DB: "rendezvous"}
	cfg.Chaos = ChaosSchedule{
		{At: 60, Kind: ChaosCrash, Target: "tomcat1"},
		{At: 120, Kind: ChaosReboot, Target: "tomcat1"},
		{At: 160, Kind: ChaosCrash, Target: "mysql1"},
		{At: 220, Kind: ChaosReboot, Target: "mysql1"},
	}
	r, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.InvariantViolation != nil {
		t.Fatalf("invariant violation: %v", r.InvariantViolation)
	}
	if r.Repairs < 2 {
		t.Fatalf("expected both crashed replicas repaired, got %d repairs", r.Repairs)
	}
	if uint64(r.RepairDiscards) != r.RepairsConfirmedLegal {
		t.Fatalf("repair discards not all confirmed legal: %d discards, %d confirmed",
			r.RepairDiscards, r.RepairsConfirmedLegal)
	}
	if r.Stats.Completed == 0 {
		t.Fatal("no requests completed")
	}
	// Each crash takes out a tier's only replica until its repair lands,
	// so some failures are inherent; service must still recover to carry
	// the large majority of the run.
	if f, c := float64(r.Stats.Failed), float64(r.Stats.Completed); f > 0.2*c {
		t.Fatalf("too many failed requests across repairs: %d failed vs %d completed",
			r.Stats.Failed, r.Stats.Completed)
	}
}
