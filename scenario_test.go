package jade

import (
	"math"
	"strings"
	"testing"

	"jade/internal/core"
	"jade/internal/metrics"
)

func TestDefaultScenarioMatchesPaperParameters(t *testing.T) {
	cfg := DefaultScenario(1, true)
	if !cfg.Managed {
		t.Fatal("managed flag lost")
	}
	ramp, ok := cfg.Profile.(RampProfile)
	if !ok {
		t.Fatalf("profile type %T", cfg.Profile)
	}
	if ramp.Base != 80 || ramp.Peak != 500 || ramp.StepPerMinute != 21 {
		t.Fatalf("ramp = %+v, want the paper's 80->500 at 21/min", ramp)
	}
	if cfg.AppSizing.Window != 60 || cfg.DBSizing.Window != 90 {
		t.Fatalf("windows = %v/%v, want 60/90 (paper)", cfg.AppSizing.Window, cfg.DBSizing.Window)
	}
	if cfg.AppSizing.Period != 1 || cfg.DBSizing.Period != 1 {
		t.Fatal("loop period must be 1 s (paper)")
	}
	if cfg.AppSizing.InhibitSeconds != 60 {
		t.Fatal("inhibition must be 60 s (paper)")
	}
	if cfg.MaxAppReplicas != 2 || cfg.MaxDBReplicas != 3 {
		t.Fatal("tier caps must match the paper's testbed")
	}
	if cfg.Nodes != 9 {
		t.Fatal("cluster must be 9 nodes")
	}
}

func TestScenarioConfigDefaultsFilledIn(t *testing.T) {
	// A nearly empty config still runs: defaults are applied.
	r, err := RunScenario(ScenarioConfig{
		Seed:    2,
		Profile: ConstantProfile{Clients: 10, Length: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if r.Config.ThinkTime != 7 {
		t.Fatalf("default think time = %v", r.Config.ThinkTime)
	}
	if r.Throughput() <= 0 {
		t.Fatal("throughput not computed")
	}
}

func TestScenarioResultThroughputZeroDuration(t *testing.T) {
	r := &ScenarioResult{Stats: &WorkloadStats{}}
	if r.Throughput() != 0 {
		t.Fatal("zero-duration throughput should be 0")
	}
}

func TestRelativizeShiftsAndFilters(t *testing.T) {
	s := metrics.NewSeries("x")
	s.Add(5, 1)
	s.Add(10, 2)
	s.Add(20, 3)
	out := relativize(s, 10)
	if out.Len() != 2 {
		t.Fatalf("len = %d, want samples at/after t0 only", out.Len())
	}
	if out.Points[0].T != 0 || out.Points[0].V != 2 {
		t.Fatalf("first point = %+v", out.Points[0])
	}
	if out.Points[1].T != 10 || out.Points[1].V != 3 {
		t.Fatalf("second point = %+v", out.Points[1])
	}
}

func TestScenarioRejectsBadADL(t *testing.T) {
	cfg := DefaultScenario(1, false)
	cfg.Profile = ConstantProfile{Clients: 5, Length: 30}
	cfg.ADL = "<definition><unclosed></definition>"
	if _, err := RunScenario(cfg); err == nil {
		t.Fatal("malformed ADL accepted")
	}
	cfg.ADL = `<definition name="x"><component name="a" wrapper="oracle"/></definition>`
	if _, err := RunScenario(cfg); err == nil {
		t.Fatal("unknown wrapper accepted")
	}
}

func TestUnmanagedRunRecordsPassiveTraces(t *testing.T) {
	cfg := DefaultScenario(4, false)
	cfg.Profile = ConstantProfile{Clients: 40, Length: 120}
	r, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.AppManager != nil || r.DBManager != nil {
		t.Fatal("unmanaged run has managers")
	}
	if r.Reconfigurations != 0 {
		t.Fatalf("unmanaged reconfigurations = %d", r.Reconfigurations)
	}
	// Passive CPU traces are recorded anyway (for Figs. 6-7).
	if r.DB.CPUSmoothed.Len() < 100 {
		t.Fatalf("db cpu trace = %d samples", r.DB.CPUSmoothed.Len())
	}
	if r.DB.Replicas.Last().V != 1 || r.App.Replicas.Last().V != 1 {
		t.Fatal("unmanaged replica traces must stay at 1")
	}
	// Node accounting ran.
	if r.NodeCPUPercent <= 0 || r.NodeMemPercent <= 0 {
		t.Fatalf("node accounting empty: cpu=%v mem=%v", r.NodeCPUPercent, r.NodeMemPercent)
	}
	// Sanity: at 40 clients the db node must be busy but not saturated.
	if m := r.DB.CPUSmoothed.Max(); m < 0.05 || m > 0.6 {
		t.Fatalf("db cpu at 40 clients = %v", m)
	}
}

func TestLatencyFigureWithSparseData(t *testing.T) {
	cfg := DefaultScenario(5, false)
	cfg.Profile = ConstantProfile{Clients: 2, Length: 30}
	r, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := latencyFigure("sparse", r)
	if !strings.Contains(out, "latency: mean=") {
		t.Fatalf("figure footer missing:\n%s", out)
	}
}

func TestBrowsingMixScenarioHasNoWrites(t *testing.T) {
	cfg := DefaultScenario(6, false)
	cfg.Mix = BrowsingMix()
	cfg.Profile = ConstantProfile{Clients: 30, Length: 120}
	r, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No write interactions → empty recovery log.
	cw := r.Deployment.MustComponent("cjdbc1").Content().(*core.CJDBCWrapper)
	if n := cw.Controller().Log().Len(); n != 0 {
		t.Fatalf("recovery log = %d records under the browsing mix", n)
	}
	if r.Stats.Completed == 0 {
		t.Fatal("no completions")
	}
}

func TestMeanLatencyMatchesSummary(t *testing.T) {
	cfg := DefaultScenario(7, false)
	cfg.Profile = ConstantProfile{Clients: 10, Length: 60}
	r, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.MeanLatency()-r.Stats.LatencySummary().Mean) > 1e-12 {
		t.Fatal("MeanLatency diverges from the summary")
	}
}
