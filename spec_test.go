package jade

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	s := DefaultSpec(7, true)
	s.Recovery = true
	s.Faults.Network.Enabled = true
	s.Faults.Network.Default = LinkConfig{LatencyMS: 0.5, JitterMS: 0.1, Loss: 0.001}
	s.Faults.Network.Heartbeat = HeartbeatConfig{PeriodSeconds: 2, Window: 4, PhiThreshold: 5}
	s.Faults.Partition = []PartitionSpec{{At: 30, DurationSeconds: 10, A: []string{"tomcat1"}, B: []string{ManagementEndpoint}}}
	s.Telemetry.TraceRequests = 50

	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := json.MarshalIndent(back, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("round trip changed the spec:\n%s\nvs\n%s", data, data2)
	}
}

func TestSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec([]byte(`{"seed": 1, "wrokload": {}}`))
	if err == nil {
		t.Fatal("want an unknown-field error for a typoed key")
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		ok     bool
	}{
		{"default", func(*Spec) {}, true},
		{"bad mix", func(s *Spec) { s.Workload.Mix = "write-heavy" }, false},
		{"bad profile kind", func(s *Spec) { s.Workload.Profile.Kind = "spike" }, false},
		{"browsing mix", func(s *Spec) { s.Workload.Mix = "browsing" }, true},
		{"loss too high", func(s *Spec) { s.Faults.Network.Default.Loss = 1 }, false},
		{"link loss negative", func(s *Spec) {
			s.Faults.Network.Links = map[string]LinkConfig{"node1->node2": {Loss: -0.1}}
		}, false},
		{"partition without network", func(s *Spec) {
			s.Faults.Partition = []PartitionSpec{{At: 1, A: []string{"tomcat1"}}}
		}, false},
		{"partition with network", func(s *Spec) {
			s.Faults.Network.Enabled = true
			s.Faults.Partition = []PartitionSpec{{At: 1, A: []string{"tomcat1"}}}
		}, true},
		{"partition empty group", func(s *Spec) {
			s.Faults.Network.Enabled = true
			s.Faults.Partition = []PartitionSpec{{At: 1}}
		}, false},
		{"chaos partition without network", func(s *Spec) {
			s.Faults.Chaos = ChaosSchedule{{At: 1, Kind: ChaosPartition, A: []string{"node1"}}}
		}, false},
		{"recovery without managed", func(s *Spec) { s.Managed = false; s.Recovery = true }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := DefaultSpec(1, true)
			tc.mutate(&s)
			err := s.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("want a validation error")
			}
		})
	}
}

// TestSpecFlattenMatchesDefaultScenario pins the compat shim: the grouped
// default spec must flatten to the same knobs as the flat default.
func TestSpecFlattenMatchesDefaultScenario(t *testing.T) {
	for _, managed := range []bool{false, true} {
		cfg, err := DefaultSpec(3, managed).Flatten()
		if err != nil {
			t.Fatal(err)
		}
		want := DefaultScenario(3, managed)
		if cfg.Seed != want.Seed || cfg.Managed != want.Managed ||
			cfg.Nodes != want.Nodes || cfg.ThinkTime != want.ThinkTime ||
			cfg.DrainSeconds != want.DrainSeconds ||
			cfg.MaxAppReplicas != want.MaxAppReplicas ||
			cfg.MaxDBReplicas != want.MaxDBReplicas ||
			cfg.AppSizing != want.AppSizing || cfg.DBSizing != want.DBSizing ||
			cfg.ThrashThreshold != want.ThrashThreshold ||
			cfg.ThrashFactor != want.ThrashFactor {
			t.Fatalf("managed=%v: flattened spec diverges from DefaultScenario:\n%+v\nvs\n%+v", managed, cfg, want)
		}
	}
}

func TestSpecFlattenPartitionBecomesChaos(t *testing.T) {
	s := DefaultSpec(1, true)
	s.Faults.Network.Enabled = true
	s.Faults.Partition = []PartitionSpec{{At: 42, DurationSeconds: 9, A: []string{"tomcat1"}, B: []string{ManagementEndpoint}}}
	cfg, err := s.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Chaos) != 1 {
		t.Fatalf("want 1 chaos event, got %d", len(cfg.Chaos))
	}
	ev := cfg.Chaos[0]
	if ev.Kind != ChaosPartition || ev.At != 42 || ev.Duration != 9 ||
		len(ev.A) != 1 || ev.A[0] != "tomcat1" || len(ev.B) != 1 || ev.B[0] != ManagementEndpoint {
		t.Fatalf("bad flattened partition event: %+v", ev)
	}
}

// partitionSpec builds the regression scenario: a managed, recovering,
// invariant-checked run on an enabled network where the app replica's
// heartbeats to the management node are cut mid-run — long enough for the
// detector to (wrongly) suspect it.
func partitionSpec(seed int64) Spec {
	s := DefaultSpec(seed, true)
	s.Recovery = true
	s.Workload.Profile = ProfileSpec{Kind: "constant", Clients: 40, DurationSeconds: 240}
	s.Checks.Invariants = true
	s.Faults.Network.Enabled = true
	s.Faults.Partition = []PartitionSpec{{At: 60, DurationSeconds: 30, A: []string{"tomcat1"}, B: []string{ManagementEndpoint}}}
	return s
}

// TestFalsePositiveUnderPartition is the headline regression: cutting a
// live replica's heartbeats must produce a false-positive suspicion, the
// resulting repair must terminate the survivor (double-repair invariant
// confirms it), and no invariant may trip.
func TestFalsePositiveUnderPartition(t *testing.T) {
	r, err := RunSpec(partitionSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.InvariantViolation != nil {
		t.Fatalf("invariant violation: %v", r.InvariantViolation)
	}
	if r.Detector == nil {
		t.Fatal("no detector stats despite recovery over an enabled fabric")
	}
	if r.Detector.FalsePositives < 1 {
		t.Fatalf("want >=1 false-positive suspicion, got %+v", *r.Detector)
	}
	if r.RepairDiscards < 1 {
		t.Fatalf("want >=1 repair discard, got %d", r.RepairDiscards)
	}
	if r.RepairsConfirmedLegal < uint64(r.RepairDiscards) {
		t.Fatalf("double-repair invariant confirmed %d of %d discards",
			r.RepairsConfirmedLegal, r.RepairDiscards)
	}
	if r.Net.Partitions != 1 {
		t.Fatalf("want exactly 1 injected partition, got %d", r.Net.Partitions)
	}
}

// TestNoFalsePositivesOnHealthyNetwork pins the detector's quiet side:
// with the fabric enabled but no faults, suspicions must be zero.
func TestNoFalsePositivesOnHealthyNetwork(t *testing.T) {
	s := DefaultSpec(2, true)
	s.Recovery = true
	s.Workload.Profile = ProfileSpec{Kind: "constant", Clients: 40, DurationSeconds: 240}
	s.Checks.Invariants = true
	s.Faults.Network.Enabled = true
	r, err := RunSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.InvariantViolation != nil {
		t.Fatalf("invariant violation: %v", r.InvariantViolation)
	}
	if r.Detector == nil || r.Detector.Suspicions != 0 {
		t.Fatalf("healthy network produced suspicions: %+v", r.Detector)
	}
	if r.Net.Messages == 0 || r.Net.Delivered == 0 {
		t.Fatalf("fabric carried no traffic: %+v", r.Net)
	}
}

// TestNetsimDeterminism sweeps 20 seeds and requires byte-identical trace
// exports for repeated runs with the network, detector, partitions and
// loss all enabled.
func TestNetsimDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("20-seed sweep")
	}
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			var dumps [2][]byte
			for i := range dumps {
				s := partitionSpec(seed)
				s.Faults.Network.Default.Loss = 0.002
				r, err := RunSpec(s)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := r.Trace().WriteJSONL(&buf); err != nil {
					t.Fatal(err)
				}
				dumps[i] = buf.Bytes()
			}
			if len(dumps[0]) == 0 {
				t.Fatal("empty JSONL export")
			}
			if !bytes.Equal(dumps[0], dumps[1]) {
				t.Fatalf("same-seed exports differ (%d vs %d bytes)", len(dumps[0]), len(dumps[1]))
			}
		})
	}
}
