package jade

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"jade/internal/cjdbc"
	"jade/internal/cluster"
	"jade/internal/core"
	"jade/internal/fluid"
	"jade/internal/fractal"
	"jade/internal/invariant"
	"jade/internal/metrics"
	"jade/internal/netsim"
	"jade/internal/obs"
	"jade/internal/obs/alert"
	"jade/internal/obs/attrib"
	"jade/internal/refresh"
	"jade/internal/rubis"
	"jade/internal/selector"
	"jade/internal/sim"
	"jade/internal/trace"
)

// ScenarioConfig describes one end-to-end evaluation run: deploy the
// three-tier RUBiS application on a simulated cluster, subject it to a
// workload profile, optionally under Jade's autonomic managers.
type ScenarioConfig struct {
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// Managed enables the self-optimization managers (the "with Jade"
	// runs); unmanaged runs keep the initial static configuration.
	Managed bool
	// Recovery additionally enables the self-recovery manager.
	Recovery bool
	// Profile is the client population profile (PaperRamp by default).
	Profile Profile
	// Mix is the interaction mix (BiddingMix by default).
	Mix *Mix
	// Dataset sizes the RUBiS database (DefaultDataset by default).
	Dataset *Dataset
	// ThinkTime is the mean client think time in seconds (7 by default).
	ThinkTime float64
	// Sessions switches the client emulator from independent stationary
	// sampling to RUBiS-style Markov sessions (DefaultTransitions).
	Sessions bool
	// WorkloadMode selects how client load exercises the tiers:
	// WorkloadDiscrete (default) simulates every request as a discrete
	// event chain; WorkloadFluid carries the bulk of the population as a
	// queue-theoretic rate flow (internal/fluid) on a coarse tick while a
	// sampled fraction keeps running as real request chains (traces,
	// exact percentiles, SLOs and alerts stay live); WorkloadAuto picks
	// fluid when the profile's peak population reaches FluidAutoClients.
	WorkloadMode string
	// FluidTick is the fluid model's virtual-time tick in seconds
	// (1 by default). Coarser ticks run faster but track ramps more
	// loosely.
	FluidTick float64
	// FluidSampleRate is the fraction of the client population kept as
	// real discrete request chains in fluid mode (0.02 by default).
	FluidSampleRate float64
	// FluidMinSampled floors the sampled population in fluid mode
	// (8 by default), so small phases still produce a live stream.
	FluidMinSampled int
	// NodeCPU overrides the per-node CPU capacity in abstract
	// CPU-seconds per second (1.0 by default, the paper's testbed
	// machine). Million-client runs use datacenter-class values.
	NodeCPU float64
	// MTBFSeconds, when positive, injects node crashes on random tier
	// replicas with exponentially distributed inter-failure times —
	// the availability-under-churn experiment for the self-recovery
	// manager (enable Recovery alongside).
	MTBFSeconds float64
	// Nodes is the cluster size (9 by default, as in the paper).
	Nodes int
	// AppSizing and DBSizing parameterize the two control loops.
	AppSizing, DBSizing SizingConfig
	// MaxAppReplicas / MaxDBReplicas cap the tiers (2 and 3 in the
	// paper's testbed).
	MaxAppReplicas, MaxDBReplicas int
	// ThrashThreshold / ThrashFactor configure the nodes' overload
	// regime (reproducing the database thrashing of Fig. 6/8). Zero
	// threshold disables thrashing.
	ThrashThreshold int
	ThrashFactor    float64
	// DrainSeconds extends the run after the profile ends so in-flight
	// work completes.
	DrainSeconds float64
	// FailAt (with FailComponent) crashes a component's node at the
	// given time after the workload starts; used by the self-recovery
	// demonstrations.
	FailAt        float64
	FailComponent string
	// ADL overrides the deployed architecture (ThreeTierADL by default).
	// It must contain plb1, tomcat1, cjdbc1 and mysql1.
	ADL string
	// Routing selects the per-tier backend-selection policies (the zero
	// value keeps each tier's historic default: weighted-round-robin L4,
	// round-robin PLB, least-pending C-JDBC reads).
	Routing RoutingConfig
	// AppReplicas / DBReplicas name the initial replica components of the
	// managed tiers (["tomcat1"] / ["mysql1"] by default). Every name
	// must exist in the deployed ADL; scenarios over wider architectures
	// (e.g. GrayFailureADL) list all their starting replicas here.
	AppReplicas, DBReplicas []string
	// Invariants enables the invariant-checking harness: the registered
	// checkers (C-JDBC consistency, node conservation, balancer
	// agreement, Fractal lifecycle, arbiter legality) run every
	// InvariantPeriod seconds and at every reconfiguration boundary.
	// The first violation freezes the run at the violation instant and
	// is reported in ScenarioResult.InvariantViolation.
	Invariants bool
	// InvariantPeriod is the harness ticker period (1 s by default).
	InvariantPeriod float64
	// Arbitrate replaces the shared inhibitor with the conflict
	// arbitration manager: sizing actuates at PriorityOptimization,
	// recovery at PriorityRecovery, so repairs may preempt sizing's
	// quiet window but never the reverse.
	Arbitrate bool
	// Chaos is a declarative failure schedule (crash/reboot/slow/
	// partition events), applied relative to workload start. Unlike
	// MTBFSeconds it is fully deterministic: the same schedule and seed
	// reproduce the same run.
	Chaos invariant.Schedule
	// Net enables and configures the simulated network fabric: when
	// Net.Enabled, every inter-tier call and heartbeat becomes a message
	// with latency, jitter, loss and partitionability, tier RPCs gain
	// timeout/retry budgets, and (with Recovery) the perfect failure
	// oracle is replaced by the heartbeat suspicion detector.
	Net netsim.Config
	// ChaosHandler, when set, receives Chaos events whose Kind this
	// package does not implement and reports whether it handled them.
	// Tests use it to inject deliberately broken actuations.
	ChaosHandler func(res *ScenarioResult, ev invariant.Event) bool
	// TraceRequests, when positive, opens a causal root span for every
	// N-th client request (request -> forward -> app -> sql), bounding
	// the span store on long runs. Decision/actuation spans and the
	// management event stream are always recorded regardless.
	TraceRequests int
	// TraceOff disables the telemetry bus for this run. Sweeps and
	// benchmarks use it: instrumentation becomes near-free and the
	// simulation schedule is unchanged, but the result carries no trace
	// (violation artifacts lose their event tail).
	TraceOff bool
	// MetricsDir, when set, writes a metrics snapshot in Prometheus text
	// and JSON format (metrics-t<time>.prom/.json) every MetricsInterval
	// virtual seconds, plus a final snapshot at run end.
	MetricsDir string
	// MetricsInterval is the snapshot period in virtual seconds (60 by
	// default). The snapshot ticker runs in every scenario regardless of
	// MetricsDir/HTTPAddr, so the event schedule never depends on whether
	// anyone is watching; page rendering is skipped when unused.
	MetricsInterval float64
	// HTTPAddr, when set (e.g. ":8080" or "127.0.0.1:0"), serves the live
	// admin endpoint for the duration of the run: /metrics, /metrics.json,
	// /healthz, /components and /loops. Handlers read only immutable pages
	// published by the simulation at snapshot ticks, so a scraper can
	// never perturb the run. The server stays up after RunScenario
	// returns (final pages published); close it via ScenarioResult.Admin.
	HTTPAddr string
	// AdminReady, when set with HTTPAddr, receives the bound address as
	// soon as the listener is up (useful with ephemeral ports).
	AdminReady func(addr string)
	// SLOs overrides the evaluated service-level objectives
	// (DefaultSLOs() when nil). Objectives without a Probe get the
	// standard scenario probe for their Kind/Tier.
	SLOs []SLObjective
	// SLOInterval is the objective evaluation window in virtual seconds
	// (10 by default).
	SLOInterval float64
	// Alerting configures the burn-rate/anomaly alerting plane. The zero
	// value means enabled with defaults; set Alerting.Disabled to turn
	// rule evaluation off. The evaluation ticker runs either way and the
	// rules only read existing measurement streams, so the simulation
	// trajectory is identical with alerting on or off.
	Alerting alert.Config
	// Operator is the scripted live-configuration schedule: each event
	// applies a refreshable-config patch through the run's refresh hub at
	// an exact virtual time after workload start. Headless runs use it to
	// replay live retunes byte-identically.
	Operator OperatorSchedule
	// SLOTargets overrides objective bounds by name at scenario start and
	// seeds the refreshable checks.slo_targets view, so /config patches
	// and operator events can retarget objectives mid-run.
	SLOTargets map[string]float64
	// Pace, when positive, slows the simulation to Pace virtual seconds
	// per wall-clock second (serve-mode only: it gives a human a real
	// window to curl the admin endpoint mid-run). The pacing callback
	// only sleeps — it never touches simulation state — but it does add
	// a once-per-virtual-second event, so paced runs are only
	// trajectory-comparable to other paced runs.
	Pace float64
	// Monitor arms the φ-accrual heartbeat detector purely as a signal
	// source even without Recovery: the initial app/db replicas are
	// watched, suspicions feed routing and the incident timelines, but
	// nothing repairs. Requires Net.Enabled; ignored when Recovery
	// already created a detector.
	Monitor bool
	// Logf receives management log lines (optional).
	Logf func(string, ...any)
}

// Workload modes (ScenarioConfig.WorkloadMode).
const (
	// WorkloadDiscrete simulates every client request as a discrete
	// event chain through the tiers (the default, and the seed's only
	// mode).
	WorkloadDiscrete = "discrete"
	// WorkloadFluid runs the hybrid fluid/discrete engine: tiers
	// exchange request rates and queue-theoretic latency/CPU estimates
	// each FluidTick, discrete events carry management actions, faults,
	// network messages and a sampled request stream.
	WorkloadFluid = "fluid"
	// WorkloadAuto selects fluid when the profile's peak population
	// reaches FluidAutoClients, discrete otherwise.
	WorkloadAuto = "auto"
)

// FluidAutoClients is the population at which WorkloadAuto switches
// from discrete to fluid: above a few thousand clients per-request
// event chains dominate the event budget, below it the discrete engine
// is both exact and fast enough.
const FluidAutoClients = 5000

// fluidCalibrationSamples is the Monte Carlo sample count used to
// calibrate the mix's mean per-request demand (Mix.FluidDemand).
const fluidCalibrationSamples = 4096

// resolveWorkloadMode maps a ScenarioConfig mode string to the fluid
// on/off decision.
func resolveWorkloadMode(mode string, profile Profile) (bool, error) {
	switch mode {
	case "", WorkloadDiscrete:
		return false, nil
	case WorkloadFluid:
		return true, nil
	case WorkloadAuto:
		return profile.Max() >= FluidAutoClients, nil
	}
	return false, fmt.Errorf("jade: unknown workload mode %q (want discrete, fluid or auto)", mode)
}

// DefaultSLOs returns the paper scenario's service-level objectives:
// client p95 latency under 2 s, client abandon rate under 1%, and both
// managed tiers' smoothed CPU under 0.90 (just above the reactors' 0.80
// grow threshold, so sustained saturation shows up as non-compliance).
func DefaultSLOs() []SLObjective {
	return []SLObjective{
		{Name: "client-latency-p95", Tier: "client", Kind: obs.LatencyPercentile,
			Percentile: 0.95, Max: 2.0, Min: obs.Unbounded()},
		{Name: "client-abandon-rate", Tier: "client", Kind: obs.AbandonRate,
			Max: 0.01, Min: obs.Unbounded()},
		{Name: "app-cpu-band", Tier: "app", Kind: obs.CPUBand,
			Max: 0.90, Min: obs.Unbounded()},
		{Name: "db-cpu-band", Tier: "db", Kind: obs.CPUBand,
			Max: 0.90, Min: obs.Unbounded()},
	}
}

// windowValues returns the series values with timestamps in [t0, t1),
// using binary search over the time-ordered points.
func windowValues(s *metrics.Series, t0, t1 float64) []float64 {
	if s == nil || len(s.Points) == 0 {
		return nil
	}
	pts := s.Points
	lo := sort.Search(len(pts), func(i int) bool { return pts[i].T >= t0 })
	var out []float64
	for _, p := range pts[lo:] {
		if p.T >= t1 {
			break
		}
		out = append(out, p.V)
	}
	return out
}

// sortedKeys returns the map's keys in sorted order, so map-driven
// application loops stay deterministic.
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DefaultScenario returns the paper's §5.2 configuration.
func DefaultScenario(seed int64, managed bool) ScenarioConfig {
	return ScenarioConfig{
		Seed:            seed,
		Managed:         managed,
		Profile:         PaperRamp(),
		ThinkTime:       7,
		Nodes:           9,
		AppSizing:       AppSizingDefaults(),
		DBSizing:        DBSizingDefaults(),
		MaxAppReplicas:  2,
		MaxDBReplicas:   3,
		ThrashThreshold: 60,
		ThrashFactor:    0.08,
		DrainSeconds:    60,
	}
}

// TierTrace holds one tier's observability for the figures.
type TierTrace struct {
	// CPURaw is the per-second spatial average CPU usage.
	CPURaw *Series
	// CPUSmoothed is the moving average the reactor sees.
	CPUSmoothed *Series
	// Replicas is the replica count over time.
	Replicas *Series
	// Min and Max are the thresholds in force (0 when unmanaged).
	Min, Max float64
}

// ScenarioResult is everything the figures and tables read.
type ScenarioResult struct {
	Config ScenarioConfig

	// Stats are the client emulator's measurements (latency, workload,
	// throughput, per-interaction aggregates).
	Stats *WorkloadStats
	// App and DB trace the two managed tiers.
	App, DB TierTrace

	// NodeCPUPercent / NodeMemPercent are run averages across the nodes
	// hosting components (Table 1's resource columns).
	NodeCPUPercent float64
	NodeMemPercent float64

	// Reconfigurations counts completed grows+shrinks (0 unmanaged).
	Reconfigurations int
	// Repairs counts completed self-recovery repairs.
	Repairs uint64
	// InjectedFailures counts chaos-injected node crashes (MTBFSeconds).
	InjectedFailures int
	// PeakNodesUsed is the high-water mark of allocated nodes.
	PeakNodesUsed int
	// NodeSeconds integrates allocated nodes over the workload — the
	// resource bill the paper's dynamic provisioning reduces.
	NodeSeconds float64
	// WorkloadStart/WorkloadEnd delimit the emulation in virtual time.
	WorkloadStart, WorkloadEnd float64

	// InvariantViolation is the first invariant violation observed, or
	// nil (always nil when Invariants is off). A violation freezes the
	// simulation, so the series and stats end at the violation instant.
	InvariantViolation *invariant.Violation
	// InvariantChecks counts individual checker evaluations performed.
	InvariantChecks uint64

	// Net summarizes the simulated network's message accounting (all
	// zero when the fabric is disabled).
	Net netsim.Stats
	// Detector summarizes the suspicion detector's behavior — including
	// its mistakes (nil unless Recovery ran over an enabled fabric).
	Detector *netsim.DetectorStats
	// RepairDiscards / RepairsConfirmedLegal count replicas discarded by
	// repairs and how many of those discards the double-repair invariant
	// verified dead (only populated with Invariants on).
	RepairDiscards        int
	RepairsConfirmedLegal uint64

	// SLOReport is the post-run compliance report over the evaluated
	// objectives.
	SLOReport *obs.SLOReport
	// Alerts is the run's alerting plane: fired alerts, correlated
	// incidents, and the deterministic alerts.jsonl / incidents.json
	// exporters (never nil; empty when Alerting.Disabled).
	Alerts *alert.Engine
	// RequestLatency is the client-perceived end-to-end latency
	// histogram (exact quantiles via RequestLatency.Quantile).
	RequestLatency *obs.Histogram
	// Fluid is the fluid network's run summary when the run used
	// WorkloadFluid (nil in discrete mode): completed flow, peak offered
	// rate and per-station peak utilization/backlog.
	Fluid *FluidReport
	// Attribution decomposes every traced request's end-to-end latency
	// into per-tier queue/service/network/retry components (nil unless
	// TraceRequests > 0 and tracing is on).
	Attribution *attrib.Analysis
	// LatencyBudget aggregates Attribution into deterministic
	// per-interaction-class budget profiles with a critical-path
	// summary; in fluid mode the stations' wait estimates are merged in
	// so million-client runs render the same report shape (nil when
	// neither source is available).
	LatencyBudget *attrib.Report
	// ConfigChanges logs every live configuration change that reached the
	// refresh hub (operator schedule, chaos config events, admin POSTs),
	// in application order; rejected patches carry their error.
	ConfigChanges []ConfigChange
	// Admin is the live admin endpoint, still serving the final published
	// pages (nil without HTTPAddr). Callers own closing it.
	Admin *obs.AdminServer
	// AdminAddr is the admin endpoint's bound address ("" without
	// HTTPAddr).
	AdminAddr string

	// Platform and Deployment stay accessible for inspection.
	Platform   *Platform
	Deployment *Deployment
	AppManager *SizingManager
	DBManager  *SizingManager
}

// Trace returns the run's telemetry bus (events, spans, exporters).
func (r *ScenarioResult) Trace() *trace.Tracer { return r.Platform.Trace() }

// MeanLatency returns the mean request latency over the workload, in
// seconds.
func (r *ScenarioResult) MeanLatency() float64 {
	return r.Stats.LatencySummary().Mean
}

// Throughput returns completed requests per second over the workload.
func (r *ScenarioResult) Throughput() float64 {
	d := r.WorkloadEnd - r.WorkloadStart
	if d <= 0 {
		return 0
	}
	return float64(r.Stats.Completed) / d
}

// RunScenario executes one full evaluation run in virtual time.
func RunScenario(cfg ScenarioConfig) (*ScenarioResult, error) {
	if cfg.Profile == nil {
		cfg.Profile = PaperRamp()
	}
	if cfg.Mix == nil {
		cfg.Mix = BiddingMix()
	}
	if cfg.Dataset == nil {
		d := DefaultDataset()
		cfg.Dataset = &d
	}
	if cfg.ThinkTime == 0 {
		cfg.ThinkTime = 7
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = 9
	}
	if cfg.AppSizing.Period == 0 {
		cfg.AppSizing = AppSizingDefaults()
	}
	if cfg.DBSizing.Period == 0 {
		cfg.DBSizing = DBSizingDefaults()
	}
	if cfg.DrainSeconds == 0 {
		cfg.DrainSeconds = 60
	}
	if cfg.FluidTick == 0 {
		cfg.FluidTick = 1
	}
	if cfg.FluidSampleRate == 0 {
		cfg.FluidSampleRate = 0.02
	}
	if cfg.FluidMinSampled == 0 {
		cfg.FluidMinSampled = 8
	}
	if cfg.NodeCPU == 0 {
		cfg.NodeCPU = 1.0
	}
	fluidOn, err := resolveWorkloadMode(cfg.WorkloadMode, cfg.Profile)
	if err != nil {
		return nil, err
	}
	if cfg.FluidTick < 0 || cfg.FluidSampleRate < 0 || cfg.FluidSampleRate > 1 || cfg.NodeCPU < 0 {
		return nil, fmt.Errorf("jade: bad fluid parameters (tick %g, sample rate %g, node cpu %g)",
			cfg.FluidTick, cfg.FluidSampleRate, cfg.NodeCPU)
	}

	if err := cfg.Routing.Validate(); err != nil {
		return nil, err
	}

	popts := core.DefaultOptions()
	popts.Seed = cfg.Seed
	popts.Nodes = cfg.Nodes
	popts.Routing = cfg.Routing
	popts.NodeConfig = cluster.Config{
		CPUCapacity:     cfg.NodeCPU,
		MemoryMB:        1024,
		ThrashThreshold: cfg.ThrashThreshold,
		ThrashFactor:    cfg.ThrashFactor,
	}
	if !cfg.Managed {
		// Without Jade there are no probes and no management components.
		popts.ProbeCPUCost = 0
		popts.ManagementMemoryMB = 0
	}
	if cfg.Logf != nil {
		popts.Logf = cfg.Logf
	}
	popts.TraceDisabled = cfg.TraceOff
	p := NewPlatform(popts)

	// The network fabric goes in before deployment so even the initial
	// recovery-log joins travel over it.
	var fabric *netsim.Fabric
	if cfg.Net.Enabled {
		fabric = netsim.New(p.Eng, cfg.Net, cfg.Seed)
		fabric.Instrument(p.Trace(), p.Metrics())
		p.Net.SetTransport(fabric)
	}

	dump, err := cfg.Dataset.InitialDatabase(cfg.Seed)
	if err != nil {
		return nil, err
	}
	p.RegisterDump("rubis", dump)

	adlText := cfg.ADL
	if adlText == "" {
		adlText = ThreeTierADL
	}
	def, err := ParseADL(adlText)
	if err != nil {
		return nil, err
	}
	var dep *Deployment
	derr := errors.New("jade: deployment did not complete")
	p.Deploy(def, func(d *Deployment, err error) { dep, derr = d, err })
	p.Eng.Run()
	if derr != nil {
		return nil, derr
	}

	appReplicas := cfg.AppReplicas
	if len(appReplicas) == 0 {
		appReplicas = []string{"tomcat1"}
	}
	dbReplicas := cfg.DBReplicas
	if len(dbReplicas) == 0 {
		dbReplicas = []string{"mysql1"}
	}
	appTier, err := NewAppTier(p, dep, "plb1", "cjdbc1", appReplicas)
	if err != nil {
		return nil, err
	}
	dbTier, err := NewDBTier(p, dep, "cjdbc1", dbReplicas)
	if err != nil {
		return nil, err
	}

	res := &ScenarioResult{Config: cfg, Platform: p, Deployment: dep}
	res.App.Min, res.App.Max = cfg.AppSizing.Min, cfg.AppSizing.Max
	res.DB.Min, res.DB.Max = cfg.DBSizing.Min, cfg.DBSizing.Max

	shared := &Inhibitor{}
	var recMgr *RecoveryManager
	var detector *netsim.Detector
	var arb *core.Arbiter
	if cfg.Managed {
		cfg.AppSizing.MaxReplicas = cfg.MaxAppReplicas
		cfg.DBSizing.MaxReplicas = cfg.MaxDBReplicas
		appMgr, err := NewSizingManager(p, "self-optimization-app", appTier, cfg.AppSizing, shared)
		if err != nil {
			return nil, err
		}
		dbMgr, err := NewSizingManager(p, "self-optimization-db", dbTier, cfg.DBSizing, shared)
		if err != nil {
			return nil, err
		}
		if cfg.Arbitrate {
			arb = core.NewArbiter(cfg.AppSizing.InhibitSeconds)
			arb.Trace = p.Trace()
			appMgr.Reactor.Arbiter = arb
			dbMgr.Reactor.Arbiter = arb
		}
		if err := appMgr.Loop.Start(); err != nil {
			return nil, err
		}
		if err := dbMgr.Loop.Start(); err != nil {
			return nil, err
		}
		res.AppManager, res.DBManager = appMgr, dbMgr
		res.App.CPURaw, res.App.CPUSmoothed = appMgr.Sensor.Raw, appMgr.Sensor.Smoothed
		res.DB.CPURaw, res.DB.CPUSmoothed = dbMgr.Sensor.Raw, dbMgr.Sensor.Smoothed
		res.App.Replicas = appMgr.Replicas
		res.DB.Replicas = dbMgr.Replicas
		if cfg.Recovery {
			rec, err := NewRecoveryManager(p, "self-recovery", 1, appTier, dbTier)
			if err != nil {
				return nil, err
			}
			if arb != nil {
				rec.Arbiter = arb
			}
			if fabric.Enabled() {
				// With a real network the perfect oracle gives way to the
				// heartbeat suspicion detector: detection is now late and
				// sometimes wrong, as on the paper's LAN.
				det := netsim.NewDetector(p.Eng, fabric, cfg.Net.Heartbeat)
				det.Instrument(p.Trace(), p.Metrics())
				rec.Suspector = det
				detector = det
			}
			if err := rec.Loop.Start(); err != nil {
				return nil, err
			}
			recMgr = rec
		}
	} else {
		// Passive observation: same sensors, zero probe cost, no reactor.
		appSensor := core.NewCPUSensor(appTier.Nodes, cfg.AppSizing.Window, 0)
		dbSensor := core.NewCPUSensor(dbTier.Nodes, cfg.DBSizing.Window, 0)
		res.App.CPURaw, res.App.CPUSmoothed = appSensor.Raw, appSensor.Smoothed
		res.DB.CPURaw, res.DB.CPUSmoothed = dbSensor.Raw, dbSensor.Smoothed
		res.App.Replicas = metrics.NewSeries("application-servers-replicas")
		res.App.Replicas.Add(p.Eng.Now(), 1)
		res.DB.Replicas = metrics.NewSeries("database-backends-replicas")
		res.DB.Replicas.Add(p.Eng.Now(), 1)
		p.Eng.Every(1, "observe", func(now float64) {
			appSensor.Sample(now)
			dbSensor.Sample(now)
		})
	}

	if detector == nil && cfg.Monitor && fabric.Enabled() {
		// Monitoring-only mode: the detector watches the initial replicas
		// as a signal source (suspicion routing, incident timelines, the
		// alert-latency comparison) without any repair acting on it.
		det := netsim.NewDetector(p.Eng, fabric, cfg.Net.Heartbeat)
		det.Instrument(p.Trace(), p.Metrics())
		for _, name := range append(append([]string{}, appReplicas...), dbReplicas...) {
			if node, err := dep.NodeOf(name); err == nil {
				det.Monitor(name, node)
			}
		}
		detector = det
	}

	if detector != nil {
		// Feed the failure detector's verdicts into the balancer pools
		// once per second: suspected replicas leave rotation (probe
		// requests bring them back in), cleared suspicions restore them.
		plbW := dep.MustComponent("plb1").Content().(*core.PLBWrapper)
		cw := dep.MustComponent("cjdbc1").Content().(*core.CJDBCWrapper)
		p.Eng.Every(1, "route-suspicions", func(float64) {
			if b := plbW.Balancer(); b != nil {
				b.Pool().SyncSuspicions(detector)
			}
			if ctl := cw.Controller(); ctl != nil {
				ctl.Pool().SyncSuspicions(detector)
			}
		})
	}

	var harness *invariant.Harness
	var doubleRepair *invariant.DoubleRepair
	if cfg.Invariants {
		harness = invariant.NewHarness(p.Eng)
		harness.Tail = p.Trace().Tail
		if cfg.InvariantPeriod > 0 {
			harness.Period = cfg.InvariantPeriod
		}
		cw := dep.MustComponent("cjdbc1").Content().(*core.CJDBCWrapper)
		plbW := dep.MustComponent("plb1").Content().(*core.PLBWrapper)
		componentState := func(name string) (fractal.State, error) {
			c, err := dep.Component(name)
			if err != nil {
				return fractal.Stopped, err
			}
			return c.State(), nil
		}
		appAgree := invariant.NewBalancerAgreement("plb1/"+appTier.TierName(), func() []string {
			b := plbW.Balancer()
			if b == nil || !b.Running() {
				return nil
			}
			return b.Workers()
		}, appTier)
		appAgree.Pendings = func() map[string]int {
			b := plbW.Balancer()
			if b == nil {
				return nil
			}
			return b.Pendings()
		}
		appAgree.ComponentState = componentState
		appAgree.NodeOf = dep.NodeOf
		dbAgree := invariant.NewBalancerAgreement("cjdbc1/"+dbTier.TierName(), func() []string {
			ctl := cw.Controller()
			if ctl == nil || !ctl.Running() {
				return nil
			}
			var names []string
			for _, b := range ctl.Backends() {
				if b.State == cjdbc.Active {
					names = append(names, b.Name)
				}
			}
			if names == nil {
				names = []string{}
			}
			return names
		}, dbTier)
		dbAgree.ComponentState = componentState
		dbAgree.NodeOf = dep.NodeOf
		harness.Register(
			invariant.NewCJDBCConsistency("cjdbc1", cw.Controller),
			invariant.NewNodeConservation(p.Pool),
			appAgree,
			dbAgree,
			invariant.NewLifecycle(dep.Root, p.ManagementRoot()),
		)
		doubleRepair = invariant.NewDoubleRepair()
		p.OnRepairDiscard(doubleRepair.Record)
		harness.Register(doubleRepair)
		if arb != nil {
			harness.Register(invariant.NewArbiterLegality(arb.QuietSeconds, func() []invariant.ArbiterDecisionView {
				ds := arb.Decisions()
				out := make([]invariant.ArbiterDecisionView, len(ds))
				for i, d := range ds {
					out[i] = invariant.ArbiterDecisionView{
						T:        d.T,
						Priority: d.Priority,
						Granted:  d.Granted,
						Released: d.Reason == "released",
					}
				}
				return out
			}))
		}
		p.OnReconfiguration(func(now float64, event string) { harness.CheckNow(event) })
		harness.Start()
	}

	// Table 1 accounting: per-second CPU and memory across the nodes
	// hosting components (static and dynamically added alike).
	var cpuSum, memSum float64
	var sampleCount int
	var nodeSeconds float64
	readers := make(map[*Node]*cluster.UtilizationReader)
	peak := p.Pool.AllocatedCount()
	p.Eng.Every(1, "node-accounting", func(now float64) {
		var cpu, mem float64
		var n int
		for _, name := range dep.ComponentNames() {
			node, err := dep.NodeOf(name)
			if err != nil || node.Failed() {
				continue
			}
			r, ok := readers[node]
			if !ok {
				r = cluster.NewUtilizationReader(node)
				readers[node] = r
			}
			cpu += r.Read()
			mem += node.MemoryFraction()
			n++
		}
		if n > 0 {
			cpuSum += cpu / float64(n)
			memSum += mem / float64(n)
			sampleCount++
		}
		alloc := p.Pool.AllocatedCount()
		nodeSeconds += float64(alloc)
		if alloc > peak {
			peak = alloc
		}
	})

	front := dep.MustComponent("plb1").Content().(*core.PLBWrapper).Balancer()

	// In fluid mode the emulator drives only a sampled fraction of the
	// population as real request chains; the rest is carried as a rate
	// flow through the queue-theoretic station chain, whose per-tier
	// utilization lands on the member nodes as background CPU load — the
	// same meters the sizing sensors read.
	driveProfile := cfg.Profile
	var fnet *fluid.Network
	if fluidOn {
		sampled := rubis.ScaledProfile{Inner: cfg.Profile, Rate: cfg.FluidSampleRate, Min: cfg.FluidMinSampled}
		driveProfile = sampled
		demand := cfg.Mix.FluidDemand(*cfg.Dataset, cfg.Seed, fluidCalibrationSamples)
		plbModel := front.FluidModel()
		ctlModel := dep.MustComponent("cjdbc1").Content().(*core.CJDBCWrapper).Controller().FluidModel()
		single := func(m fluid.ServiceModel) func() []*cluster.Node {
			return func() []*cluster.Node {
				if m.Up == nil || m.Up() {
					return []*cluster.Node{m.Node}
				}
				return nil
			}
		}
		perQuery := demand.QueriesPerRequest * ctlModel.CostPerUnit
		thrT, thrF := cfg.ThrashThreshold, cfg.ThrashFactor
		stations := []*fluid.Station{
			{
				Name:    "plb",
				Demand:  func(int) float64 { return plbModel.CostPerUnit },
				Service: func(int) float64 { return plbModel.CostPerUnit },
				Members: single(plbModel),
			},
			{
				Name:            "app",
				Demand:          func(k int) float64 { return demand.App / float64(k) },
				Service:         func(int) float64 { return demand.App },
				Members:         appTier.Nodes,
				ThrashThreshold: thrT,
				ThrashFactor:    thrF,
			},
			{
				Name:    "cjdbc",
				Demand:  func(int) float64 { return perQuery },
				Service: func(int) float64 { return perQuery },
				Members: single(ctlModel),
			},
			{
				// Reads load-balance across the k replicas; RAIDb-1
				// broadcasts every write to all of them.
				Name:            "db",
				Demand:          func(k int) float64 { return demand.DBRead/float64(k) + demand.DBWrite },
				Service:         func(int) float64 { return demand.DBRead + demand.DBWrite },
				Members:         dbTier.Nodes,
				ThrashThreshold: thrT,
				ThrashFactor:    thrF,
			},
		}
		start := p.Eng.Now()
		total, dur := cfg.Profile, cfg.Profile.Duration()
		pop := func(now float64) float64 {
			rel := now - start
			if rel < 0 || rel >= dur {
				return 0
			}
			n := total.Active(rel) - sampled.Active(rel)
			if n < 0 {
				return 0
			}
			return float64(n)
		}
		fnet = fluid.NewNetwork(fluid.Config{
			ThinkTime:    cfg.ThinkTime,
			Population:   pop,
			RecordSeries: true,
		}, stations...)
		barrier := sim.NewTickBarrier(p.Eng, cfg.FluidTick, "fluid:tick")
		barrier.Register("network", fnet.Tick)
		barrier.Start()
	}

	// With the fabric enabled the clients sit behind the network too, as
	// the pseudo-endpoint "client".
	em := NewEmulator(p.Eng, p.Net.RemoteHTTP(netsim.ClientEndpoint, "front", front), cfg.Mix, driveProfile, *cfg.Dataset)
	em.ThinkTime = cfg.ThinkTime
	if fluidOn {
		// The workload series records the full (fluid + sampled)
		// population, so plots and SLO context keep paper-scale numbers.
		em.ReportProfile = cfg.Profile
	}
	if cfg.TraceRequests > 0 {
		em.Trace = p.Trace()
		em.TraceEvery = cfg.TraceRequests
	}
	if cfg.Sessions {
		em.Chain = rubis.DefaultTransitions()
	}
	if err := em.Start(); err != nil {
		return nil, err
	}
	res.WorkloadStart = p.Eng.Now()

	// Introspection plane: client latency histogram, SLO engine and the
	// snapshot publisher. Both tickers run unconditionally so the event
	// schedule is identical whether or not anyone watches the run.
	reg := p.Metrics()
	em.Obs = obs.NewTierMetrics(reg, "client", "emulator")
	res.RequestLatency = em.Obs.Latency

	objs := cfg.SLOs
	if objs == nil {
		objs = DefaultSLOs()
	}
	for i := range objs {
		if objs[i].Probe == nil {
			objs[i].Probe = scenarioProbe(&objs[i], em, res)
		}
	}
	sloInterval := cfg.SLOInterval
	if sloInterval <= 0 {
		sloInterval = 10
	}
	slo := obs.NewSLOEngine(reg, sloInterval, objs)
	p.Eng.Every(sloInterval, "slo-eval", slo.Evaluate)
	for _, name := range sortedKeys(cfg.SLOTargets) {
		slo.Retarget(name, cfg.SLOTargets[name])
	}

	// Alerting plane: burn-rate rules over the SLO evaluation stream,
	// streaming anomaly detectors over the client series, pool-skew rules
	// over the routing reservoirs, and the incident correlator fed by
	// detector suspicions, control-loop decisions and routing evictions.
	// The ticker runs unconditionally and every rule only reads existing
	// measurement streams, so enabling alerting never changes the
	// trajectory — Tick is a pure observer of the run.
	aeng := alert.NewEngine(cfg.Alerting, p.Trace())
	aeng.Instrument(reg)
	res.Alerts = aeng
	if aeng.Enabled() {
		acfg := aeng.Config()
		burn := make(map[string]*alert.BurnRule, len(objs))
		for _, o := range objs {
			br := alert.NewBurnRule(acfg, o.Name, o.Tier)
			burn[o.Name] = br
			aeng.AddRule(br)
		}
		slo.Observer = func(now float64, name, _ string, value float64, met bool) {
			if br := burn[name]; br != nil {
				br.Observe(now, value, met)
			}
		}
		latProbe := func() alert.Probe {
			prev := -1.0
			return func(now float64) (float64, bool) {
				t0 := prev
				prev = now
				vs := windowValues(em.Stats().Latency, t0, now)
				if t0 < 0 || len(vs) == 0 {
					return 0, false
				}
				sort.Float64s(vs)
				return metrics.Percentile(vs, 0.99), true
			}
		}
		abandonProbe := func() alert.Probe {
			var prevC, prevF uint64
			primed := false
			return func(now float64) (float64, bool) {
				st := em.Stats()
				dc, df := st.Completed-prevC, st.Failed-prevF
				prevC, prevF = st.Completed, st.Failed
				if !primed {
					primed = true
					return 0, false
				}
				if dc+df == 0 {
					return 0, false
				}
				return float64(df) / float64(dc+df), true
			}
		}
		aeng.AddRule(alert.NewZScoreRule(acfg, "anomaly:client-latency-p99", "client", "client", true, 0.3, latProbe()))
		aeng.AddRule(alert.NewRateRule(acfg, "anomaly:client-abandon-rate", "client", "client", true, 0.02, abandonProbe()))
		plbW := dep.MustComponent("plb1").Content().(*core.PLBWrapper)
		cw := dep.MustComponent("cjdbc1").Content().(*core.CJDBCWrapper)
		poolStats := func(pool func() *selector.Pool) func() []alert.BackendStat {
			return func() []alert.BackendStat {
				pl := pool()
				if pl == nil {
					return nil
				}
				snap := pl.Snapshot()
				out := make([]alert.BackendStat, 0, len(snap))
				for _, s := range snap {
					out = append(out, alert.BackendStat{
						Name: s.Name, MeanLatency: s.MeanLatency,
						LatencySamples: s.LatencySamples,
						Failures:       s.DecayedFails, InFlight: s.InFlight,
					})
				}
				return out
			}
		}
		aeng.AddRule(alert.NewSkewRule(acfg, "skew:app-pool", "app", 0.1, poolStats(func() *selector.Pool {
			if b := plbW.Balancer(); b != nil {
				return b.Pool()
			}
			return nil
		})))
		aeng.AddRule(alert.NewSkewRule(acfg, "skew:db-pool", "db", 0.05, poolStats(func() *selector.Pool {
			if ctl := cw.Controller(); ctl != nil {
				return ctl.Pool()
			}
			return nil
		})))
		// Causal context for the incident timelines.
		p.OnReconfiguration(func(now float64, event string) {
			aeng.Observe(now, "loop.reconfig", "control-loop", "", event, 0)
		})
		if b := plbW.Balancer(); b != nil {
			b.Pool().OnEvict(func(name string) {
				aeng.Observe(p.Eng.Now(), "route.evict", "router", name, "app pool evicted "+name, 0)
			})
		}
		if ctl := cw.Controller(); ctl != nil {
			ctl.Pool().OnEvict(func(name string) {
				aeng.Observe(p.Eng.Now(), "route.evict", "router", name, "db pool evicted "+name, 0)
			})
		}
		if detector != nil {
			detector.OnTransition(func(now float64, target string, suspected, falsePositive bool) {
				kind, detail := "detector.suspect", fmt.Sprintf("phi over threshold (false positive: %v)", falsePositive)
				if !suspected {
					kind, detail = "detector.clear", "phi back under threshold"
				}
				aeng.Observe(now, kind, "detector", target, detail, 0)
			})
		}
	}
	p.Eng.Every(aeng.Config().EvalIntervalSeconds, "alert-eval", aeng.Tick)

	// Live refreshable configuration: typed views over the refreshable
	// sub-configs, a hub every change funnels through (operator schedule,
	// chaos config events, admin POSTs), and subscriptions wiring each
	// view to the live managers. Changes land at exact virtual ticks on
	// the simulation goroutine and emit "config" trace spans, so retunes
	// replay byte-identically with the same seed and schedule.
	hub := refresh.NewHub(p.Trace())
	crt := newConfigRuntime(hub,
		cfg.AppSizing, cfg.DBSizing, cfg.Routing,
		fabric.RPCBudgets(), slo.Targets(), aeng.Config())
	if cfg.Managed {
		res.AppManager.Watch(crt.appSizing)
		res.DBManager.Watch(crt.dbSizing)
	}
	crt.routing.Subscribe(func(now float64, old, cur RoutingConfig) {
		// Future (re)starts build pools with the new policies; live pools
		// are swapped and retuned in place, keeping backend bookkeeping.
		p.UpdateRouting(cur)
		retune := func(pl *selector.Pool, name string, def selector.Policy) {
			if pl == nil {
				return
			}
			pol := def
			if name != "" {
				if parsed, err := selector.ParsePolicy(name); err == nil {
					pol = parsed
				}
			}
			pl.SetPolicy(pol)
			pl.Retune(cur.HalfLifeSeconds, cur.ProbeAfterSeconds)
		}
		if w, ok := dep.MustComponent("plb1").Content().(*core.PLBWrapper); ok {
			if b := w.Balancer(); b != nil {
				retune(b.Pool(), cur.App, selector.RoundRobin)
			}
		}
		if w, ok := dep.MustComponent("cjdbc1").Content().(*core.CJDBCWrapper); ok {
			if ctl := w.Controller(); ctl != nil {
				retune(ctl.Pool(), cur.DB, selector.LeastPending)
			}
		}
		if c, err := dep.Component("l4"); err == nil {
			if w, ok := c.Content().(*core.L4Wrapper); ok {
				if sw := w.Switch(); sw != nil {
					retune(sw.Pool(), cur.L4, selector.WeightedRoundRobin)
				}
			}
		}
	})
	crt.rpc.Subscribe(func(now float64, old, cur map[string]RPCBudget) {
		fabric.SetRPCBudgets(cur)
	})
	crt.sloTargets.Subscribe(func(now float64, old, cur map[string]float64) {
		for _, name := range sortedKeys(cur) {
			slo.Retarget(name, cur[name])
		}
	})
	crt.alerting.Subscribe(func(now float64, old, cur AlertConfig) {
		aeng.Retune(cur)
	})

	if cfg.MetricsDir != "" {
		if err := os.MkdirAll(cfg.MetricsDir, 0o755); err != nil {
			return nil, err
		}
	}
	pub := obs.NewPublisher()
	pub.SetPostHandler("/config", crt.handleConfigPost)
	// The drain ticker runs unconditionally (like every other plane's
	// ticker) so the event schedule never depends on HTTPAddr; without an
	// admin endpoint no submission can ever be pending, so headless runs
	// drain nothing. Live POSTs are wall-clock-timed — headless replays
	// script the same changes via cfg.Operator instead.
	p.Eng.Every(1, "config-drain", func(now float64) {
		if hub.Drain(now) > 0 {
			// Refresh the /config page right away so a live `jadectl
			// config get` sees its own set without waiting for the next
			// metrics snapshot. Only live submissions reach this branch,
			// so headless trajectories are untouched.
			pub.Set("/config", crt.renderPage(now))
		}
	})
	if cfg.HTTPAddr != "" {
		admin, aerr := obs.StartAdmin(cfg.HTTPAddr, pub)
		if aerr != nil {
			return nil, aerr
		}
		res.Admin = admin
		res.AdminAddr = admin.Addr()
		if cfg.AdminReady != nil {
			cfg.AdminReady(admin.Addr())
		}
	}
	metricsInterval := cfg.MetricsInterval
	if metricsInterval <= 0 {
		metricsInterval = 60
	}
	// Trace-plane loss counters: silent span/event drops would undermine
	// any attribution built on spans, so they are first-class metrics.
	traceDropped := reg.Counter("jade_trace_dropped_spans_total", "Spans refused because the span store was full.")
	traceEvicted := reg.Counter("jade_trace_evicted_events_total", "Events evicted from the trace ring buffer.")
	var prevDropped, prevEvicted uint64
	// Fluid-engine internals: per-station utilization/backlog/wait gauges
	// refreshed at every snapshot tick (flat zeros in discrete mode keep
	// the exposition shape identical across workload engines).
	type fluidGaugeSet struct {
		st                               *fluid.Station
		rho, backlog, wait, pRho, pWait *obs.Gauge
	}
	var fluidGauges []fluidGaugeSet
	if fnet != nil {
		for _, s := range fnet.Stations() {
			lbl := obs.L("station", s.Name)
			fluidGauges = append(fluidGauges, fluidGaugeSet{
				st:      s,
				rho:     reg.Gauge("jade_fluid_rho", "Fluid station member utilization last tick.", lbl),
				backlog: reg.Gauge("jade_fluid_backlog", "Fluid station backlog beyond capacity (requests).", lbl),
				wait:    reg.Gauge("jade_fluid_wait_seconds", "Fluid station per-request latency estimate.", lbl),
				pRho:    reg.Gauge("jade_fluid_peak_rho", "Fluid station peak member utilization.", lbl),
				pWait:   reg.Gauge("jade_fluid_peak_wait_seconds", "Fluid station peak latency estimate.", lbl),
			})
		}
	}
	var snapErr error
	snapshot := func(now float64) {
		st := p.Trace().Stat()
		traceDropped.Add(st.SpansDropped - prevDropped)
		traceEvicted.Add(st.EventsEvicted - prevEvicted)
		prevDropped, prevEvicted = st.SpansDropped, st.EventsEvicted
		for _, fg := range fluidGauges {
			fg.rho.Set(fg.st.Rho())
			fg.backlog.Set(fg.st.Backlog())
			fg.wait.Set(fg.st.Wait())
			fg.pRho.Set(fg.st.PeakRho())
			fg.pWait.Set(fg.st.PeakWait())
		}
		if res.Admin == nil && cfg.MetricsDir == "" {
			return // nobody watching: skip rendering, keep the schedule
		}
		snap := reg.Snapshot()
		prom := obs.PrometheusText(snap)
		js := obs.MetricsJSON(snap)
		pub.Set("/metrics", prom)
		pub.Set("/metrics.json", js)
		pub.Set("/components", componentsPage(now, dep, p))
		pub.Set("/loops", loopsPage(now, res))
		pub.Set("/healthz", healthPage(now, p, dep, harness, slo, aeng))
		pub.Set("/alerts", aeng.AlertsPage(now))
		pub.Set("/incidents", aeng.IncidentsJSON(now))
		pub.Set("/fluid", fluidPage(now, fnet))
		pub.Set("/config", crt.renderPage(now))
		if cfg.MetricsDir != "" {
			base := filepath.Join(cfg.MetricsDir, fmt.Sprintf("metrics-t%08d", int64(math.Round(now))))
			if err := os.WriteFile(base+".prom", prom, 0o644); err != nil && snapErr == nil {
				snapErr = err
			}
			if err := os.WriteFile(base+".json", js, 0o644); err != nil && snapErr == nil {
				snapErr = err
			}
		}
	}
	snapshot(p.Eng.Now())
	p.Eng.Every(metricsInterval, "obs-snapshot", snapshot)

	if cfg.FailComponent != "" {
		p.Eng.After(cfg.FailAt, "inject-failure", func() {
			if node, err := dep.NodeOf(cfg.FailComponent); err == nil {
				node.Fail()
			}
		})
	}
	if len(cfg.Chaos) > 0 {
		// Targets are resolved at fire time: a component discarded by a
		// repair no longer resolves, and a Reboot names the node its
		// earlier Crash actually hit.
		crashed := map[string]*cluster.Node{}
		resolve := func(target string) *cluster.Node {
			if node, err := dep.NodeOf(target); err == nil {
				return node
			}
			if node, ok := p.Pool.Lookup(target); ok {
				return node
			}
			return nil
		}
		for _, ev := range cfg.Chaos.Sorted() {
			ev := ev
			p.Eng.At(res.WorkloadStart+ev.At, "chaos:"+string(ev.Kind), func() {
				switch ev.Kind {
				case invariant.Crash:
					node := resolve(ev.Target)
					if node == nil || node.Failed() {
						return
					}
					p.Logf("chaos: crashing %s (%s)", node.Name(), ev.Target)
					crashed[ev.Target] = node
					node.Fail()
					res.InjectedFailures++
				case invariant.Reboot:
					node := crashed[ev.Target]
					if node == nil {
						node = resolve(ev.Target)
					}
					if node != nil && node.Failed() {
						p.Logf("chaos: rebooting %s (%s)", node.Name(), ev.Target)
						node.Reboot()
					}
				case invariant.Slow:
					node := resolve(ev.Target)
					if node == nil || node.Failed() {
						return
					}
					dur := ev.Duration
					if dur <= 0 {
						dur = 60
					}
					p.Logf("chaos: slowing %s (%s) for %.0f s", node.Name(), ev.Target, dur)
					hog := node.Submit(1e12, nil, nil)
					if hog != nil {
						p.Eng.After(dur, "chaos:slow-end", func() { node.Cancel(hog) })
					}
				case invariant.Partition:
					if !fabric.Enabled() {
						p.Logf("chaos: partition event ignored (network fabric disabled)")
						return
					}
					a := resolveEndpoints(dep, ev.A)
					b := resolveEndpoints(dep, ev.B)
					p.Logf("chaos: partitioning %v | %v", a, b)
					id := fabric.Partition(a, b)
					if ev.Duration > 0 {
						p.Eng.After(ev.Duration, "chaos:partition-heal", func() {
							p.Logf("chaos: healing partition %v | %v", a, b)
							fabric.Heal(id)
						})
					}
				case invariant.Heal:
					if fabric.Enabled() {
						p.Logf("chaos: healing all partitions")
						fabric.HealAll()
					}
				case invariant.Config:
					if err := hub.Apply(p.Eng.Now(), refresh.SourceChaos, ev.Patch); err != nil {
						p.Logf("chaos: config patch rejected: %v", err)
					} else {
						p.Logf("chaos: applied config patch %s", ev.Patch)
					}
				default:
					if cfg.ChaosHandler == nil || !cfg.ChaosHandler(res, ev) {
						p.Logf("chaos: unhandled event kind %q on %s", ev.Kind, ev.Target)
					}
				}
			})
		}
	}
	for _, ev := range cfg.Operator.Sorted() {
		ev := ev
		p.Eng.At(res.WorkloadStart+ev.At, "config:operator", func() {
			if err := hub.Apply(p.Eng.Now(), refresh.SourceOperator, ev.Patch); err != nil {
				p.Logf("operator: config patch rejected: %v", err)
			} else {
				p.Logf("operator: applied config patch %s", ev.Patch)
			}
		})
	}
	if cfg.Pace > 0 {
		wallStart := time.Now()
		virtStart := p.Eng.Now()
		p.Eng.Every(1, "pace", func(now float64) {
			target := time.Duration(float64(time.Second) * (now - virtStart) / cfg.Pace)
			if ahead := target - time.Since(wallStart); ahead > 0 {
				time.Sleep(ahead)
			}
		})
	}
	if cfg.MTBFSeconds > 0 {
		var scheduleCrash func()
		scheduleCrash = func() {
			delay := p.Eng.Exponential(cfg.MTBFSeconds)
			p.Eng.After(delay, "chaos", func() {
				if p.Eng.Now() >= res.WorkloadStart+cfg.Profile.Duration() {
					return // workload over, stop injecting
				}
				// Crash a random currently deployed replica node (app or
				// db tier; balancers and the controller are spared so
				// availability stays attributable to replica repair).
				var victims []string
				for _, name := range appTier.ReplicaNames() {
					victims = append(victims, name)
				}
				for _, name := range dbTier.ReplicaNames() {
					victims = append(victims, name)
				}
				if len(victims) > 0 {
					victim := victims[p.Eng.Rand().Intn(len(victims))]
					if node, err := dep.NodeOf(victim); err == nil && !node.Failed() {
						p.Logf("chaos: crashing %s (%s)", node.Name(), victim)
						node.Fail()
						res.InjectedFailures++
						// The node is later repaired off-pool; reboot it
						// so the pool does not starve under long churn.
						p.Eng.After(60, "chaos:reboot", node.Reboot)
					}
				}
				scheduleCrash()
			})
		}
		scheduleCrash()
	}

	p.Eng.RunUntil(res.WorkloadStart + cfg.Profile.Duration() + cfg.DrainSeconds)
	hub.Close() // freeze the configuration: late POSTs get ErrClosed
	res.ConfigChanges = crt.changes()
	em.Stop()
	res.WorkloadEnd = res.WorkloadStart + cfg.Profile.Duration()
	if harness != nil {
		harness.Stop()
		res.InvariantViolation = harness.Violation()
		res.InvariantChecks = harness.Checks()
	}

	res.Stats = em.Stats()
	if fnet != nil {
		rep := fnet.Report()
		res.Fluid = &rep
	}
	if sampleCount > 0 {
		res.NodeCPUPercent = 100 * cpuSum / float64(sampleCount)
		res.NodeMemPercent = 100 * memSum / float64(sampleCount)
	}
	res.PeakNodesUsed = peak
	res.NodeSeconds = nodeSeconds
	if recMgr != nil {
		res.Repairs = recMgr.Repairs
	}
	res.Net = fabric.Stats()
	if detector != nil {
		stats := detector.Stats()
		res.Detector = &stats
	}
	if doubleRepair != nil {
		res.RepairDiscards = doubleRepair.Discards()
		res.RepairsConfirmedLegal = doubleRepair.Confirmed()
	}
	if cfg.Managed {
		res.Reconfigurations = int(res.AppManager.Reactor.Grows + res.AppManager.Reactor.Shrinks +
			res.DBManager.Reactor.Grows + res.DBManager.Reactor.Shrinks)
	}
	res.SLOReport = slo.Report()
	// Latency attribution: walk the traced span forest into per-request
	// component breakdowns, and aggregate (with the fluid stations' wait
	// estimates when the run was fluid) into the budget report.
	if cfg.TraceRequests > 0 && !cfg.TraceOff {
		res.Attribution = attrib.FromTracer(p.Trace())
	}
	if res.Attribution != nil || fnet != nil {
		analysis := res.Attribution
		if analysis == nil {
			analysis = &attrib.Analysis{}
		}
		res.LatencyBudget = attrib.BuildReport(analysis, fluidBudgetTiers(fnet))
	}
	snapshot(p.Eng.Now())
	if cfg.MetricsDir != "" {
		if err := os.WriteFile(filepath.Join(cfg.MetricsDir, "alerts.jsonl"), aeng.AlertsJSONL(), 0o644); err != nil && snapErr == nil {
			snapErr = err
		}
		if err := os.WriteFile(filepath.Join(cfg.MetricsDir, "incidents.json"), aeng.IncidentsJSON(p.Eng.Now()), 0o644); err != nil && snapErr == nil {
			snapErr = err
		}
		if sloJSON, err := json.MarshalIndent(res.SLOReport, "", "  "); err == nil {
			if werr := os.WriteFile(filepath.Join(cfg.MetricsDir, "slo_report.json"), append(sloJSON, '\n'), 0o644); werr != nil && snapErr == nil {
				snapErr = werr
			}
		}
		if res.LatencyBudget != nil {
			if err := os.WriteFile(filepath.Join(cfg.MetricsDir, "latency_budget.json"), res.LatencyBudget.Marshal(), 0o644); err != nil && snapErr == nil {
				snapErr = err
			}
		}
		if fnet != nil {
			if err := os.WriteFile(filepath.Join(cfg.MetricsDir, "fluid.json"), fluidPage(p.Eng.Now(), fnet), 0o644); err != nil && snapErr == nil {
				snapErr = err
			}
		}
		if err := os.WriteFile(filepath.Join(cfg.MetricsDir, "config.json"), crt.renderPage(p.Eng.Now()), 0o644); err != nil && snapErr == nil {
			snapErr = err
		}
	}
	if snapErr != nil {
		return nil, snapErr
	}
	return res, nil
}

// scenarioProbe returns the standard probe for an objective's Kind/Tier,
// reading the scenario's own measurement streams over [t0, t1).
func scenarioProbe(obj *SLObjective, em *Emulator, res *ScenarioResult) func(t0, t1 float64) (float64, bool) {
	switch obj.Kind {
	case obs.LatencyPercentile:
		pct := obj.Percentile
		return func(t0, t1 float64) (float64, bool) {
			vs := windowValues(em.Stats().Latency, t0, t1)
			if len(vs) == 0 {
				return 0, false
			}
			sort.Float64s(vs)
			return metrics.Percentile(vs, pct), true
		}
	case obs.AbandonRate:
		var prevC, prevF uint64
		return func(t0, t1 float64) (float64, bool) {
			st := em.Stats()
			dc, df := st.Completed-prevC, st.Failed-prevF
			prevC, prevF = st.Completed, st.Failed
			if dc+df == 0 {
				return 0, false
			}
			return float64(df) / float64(dc+df), true
		}
	case obs.CPUBand:
		var s *Series
		switch obj.Tier {
		case "app":
			s = res.App.CPUSmoothed
		case "db":
			s = res.DB.CPUSmoothed
		}
		return func(t0, t1 float64) (float64, bool) {
			vs := windowValues(s, t0, t1)
			if len(vs) == 0 {
				return 0, false
			}
			return metrics.SpatialMean(vs), true
		}
	}
	return func(float64, float64) (float64, bool) { return 0, false }
}

// Introspection document schemas.
const (
	// ComponentsSchema identifies the /components Fractal-tree document.
	ComponentsSchema = "jade-components/v1"
	// LoopsSchema identifies the /loops control-loop status document.
	LoopsSchema = "jade-loops/v1"
	// FluidSchema identifies the /fluid workload-engine document.
	FluidSchema = "jade-fluid/v1"
)

// fluidStationDoc is one station's row on the /fluid page.
type fluidStationDoc struct {
	Name        string  `json:"name"`
	Rho         float64 `json:"rho"`
	Backlog     float64 `json:"backlog"`
	WaitSec     float64 `json:"wait_sec"`
	SvcSec      float64 `json:"svc_sec"`
	PeakRho     float64 `json:"peak_rho"`
	PeakBacklog float64 `json:"peak_backlog"`
	PeakWaitSec float64 `json:"peak_wait_sec"`
}

// fluidPage renders the fluid workload engine's internals: the offered
// rate, response estimate, and every station's ρ/backlog/wait with
// peaks. Discrete runs serve the same document with Enabled false, so
// scrapers need no mode awareness.
func fluidPage(now float64, fnet *fluid.Network) []byte {
	doc := struct {
		Schema      string            `json:"schema"`
		Time        float64           `json:"time"`
		Enabled     bool              `json:"enabled"`
		RatePerSec  float64           `json:"rate_per_sec"`
		ResponseSec float64           `json:"response_sec"`
		Completed   float64           `json:"completed"`
		Stations    []fluidStationDoc `json:"stations"`
	}{Schema: FluidSchema, Time: now, Stations: []fluidStationDoc{}}
	if fnet != nil {
		doc.Enabled = true
		doc.RatePerSec = fnet.Rate()
		doc.ResponseSec = fnet.Response()
		doc.Completed = fnet.Completed()
		for _, s := range fnet.Stations() {
			doc.Stations = append(doc.Stations, fluidStationDoc{
				Name:        s.Name,
				Rho:         s.Rho(),
				Backlog:     s.Backlog(),
				WaitSec:     s.Wait(),
				SvcSec:      s.Svc(),
				PeakRho:     s.PeakRho(),
				PeakBacklog: s.PeakBacklog(),
				PeakWaitSec: s.PeakWait(),
			})
		}
	}
	b, _ := json.MarshalIndent(doc, "", "  ")
	return append(b, '\n')
}

// ValidateFluidPage checks a jade-fluid/v1 document (/fluid,
// fluid.json): schema, non-negative station figures, and names present
// whenever the engine is enabled.
func ValidateFluidPage(doc []byte) error {
	var page struct {
		Schema   string            `json:"schema"`
		Enabled  bool              `json:"enabled"`
		Stations []fluidStationDoc `json:"stations"`
	}
	if err := json.Unmarshal(doc, &page); err != nil {
		return fmt.Errorf("fluid: not valid JSON: %w", err)
	}
	if page.Schema != FluidSchema {
		return fmt.Errorf("fluid: schema %q, want %q", page.Schema, FluidSchema)
	}
	if page.Stations == nil {
		return fmt.Errorf("fluid: missing stations array")
	}
	if page.Enabled && len(page.Stations) == 0 {
		return fmt.Errorf("fluid: enabled engine published no stations")
	}
	for i, s := range page.Stations {
		if s.Name == "" {
			return fmt.Errorf("fluid: stations[%d]: missing name", i)
		}
		if s.Rho < 0 || s.Backlog < 0 || s.WaitSec < 0 || s.PeakRho < s.Rho || s.PeakWaitSec < 0 {
			return fmt.Errorf("fluid: stations[%d] %s: implausible figures (rho=%g peak=%g wait=%g)",
				i, s.Name, s.Rho, s.PeakRho, s.WaitSec)
		}
	}
	return nil
}

// fluidBudgetTiers renders the fluid stations' current wait estimates
// in latency-budget form (queue = wait − ideal service), so fluid and
// discrete runs share one report shape.
func fluidBudgetTiers(fnet *fluid.Network) []attrib.FluidTier {
	if fnet == nil {
		return nil
	}
	out := make([]attrib.FluidTier, 0, len(fnet.Stations()))
	for _, s := range fnet.Stations() {
		q := s.Wait() - s.Svc()
		if q < 0 {
			q = 0
		}
		out = append(out, attrib.FluidTier{
			Station:    s.Name,
			Rho:        s.Rho(),
			PeakRho:    s.PeakRho(),
			QueueSec:   q,
			ServiceSec: s.Svc(),
			PeakSec:    s.PeakWait(),
		})
	}
	return out
}

// componentsPage renders the deployed application and management trees.
func componentsPage(now float64, dep *Deployment, p *Platform) []byte {
	doc := struct {
		Schema string         `json:"schema"`
		Time   float64        `json:"time"`
		Roots  []fractal.View `json:"roots"`
	}{ComponentsSchema, now, []fractal.View{dep.Root.View(), p.ManagementRoot().View()}}
	b, _ := json.MarshalIndent(doc, "", "  ")
	return append(b, '\n')
}

// loopsPage renders the sizing control loops' live status.
func loopsPage(now float64, res *ScenarioResult) []byte {
	loops := []obs.LoopStatus{}
	if res.AppManager != nil {
		loops = append(loops, res.AppManager.Status(now))
	}
	if res.DBManager != nil {
		loops = append(loops, res.DBManager.Status(now))
	}
	doc := struct {
		Schema string           `json:"schema"`
		Time   float64          `json:"time"`
		Loops  []obs.LoopStatus `json:"loops"`
	}{LoopsSchema, now, loops}
	b, _ := json.MarshalIndent(doc, "", "  ")
	return append(b, '\n')
}

// healthPage renders the liveness + compliance document: the status
// degrades to "degraded" (with the burning objective names) while any
// SLO objective's latest evaluated window missed its bound.
func healthPage(now float64, p *Platform, dep *Deployment, harness *invariant.Harness, slo *obs.SLOEngine, aeng *alert.Engine) []byte {
	violation := harness != nil && harness.Violation() != nil
	return obs.RenderHealth(now, p.Eng.Processed(), len(dep.ComponentNames()),
		violation, slo.Burning(), aeng.ActiveCount())
}

// resolveEndpoints maps a chaos partition group to fabric endpoint
// names: component names resolve to their current node, anything else
// (node names, "client", "jade") passes through literally.
func resolveEndpoints(dep *Deployment, names []string) []string {
	out := make([]string, 0, len(names))
	for _, name := range names {
		if node, err := dep.NodeOf(name); err == nil {
			out = append(out, node.Name())
			continue
		}
		out = append(out, name)
	}
	return out
}

// mustScenario is a helper for the experiment runners.
func mustScenario(cfg ScenarioConfig) (*ScenarioResult, error) {
	r, err := RunScenario(cfg)
	if err != nil {
		return nil, fmt.Errorf("jade: scenario (managed=%v): %w", cfg.Managed, err)
	}
	return r, nil
}
