package jade

import (
	"fmt"
	"strings"

	"jade/internal/core"
	"jade/internal/metrics"
	"jade/internal/report"
)

// PaperRuns holds the pair of evaluation runs (with and without Jade)
// that Figures 5-9 are drawn from: both replay the §5.2 ramp workload on
// identical clusters; only the managed run has the two self-optimization
// control loops armed.
type PaperRuns struct {
	Managed   *ScenarioResult
	Unmanaged *ScenarioResult
	// Speedup is the time compression applied to the ramp (1 = the
	// paper's ~50-minute run; 5 = the same client trajectory five times
	// faster, for quick runs).
	Speedup float64
}

// RunPaperScenario executes the managed and unmanaged runs. speedup
// compresses the ramp's time axis (1 reproduces the paper's ~3000 s run;
// the client trajectory, and therefore the saturation points, are
// unchanged). Optional mutate hooks adjust each run's config after
// assembly (CLI overrides); they run on both the managed and unmanaged
// variants.
func RunPaperScenario(seed int64, speedup float64, mutate ...func(*ScenarioConfig)) (*PaperRuns, error) {
	if speedup <= 0 {
		speedup = 1
	}
	profile := RampProfile{
		Base:          80,
		Peak:          500,
		StepPerMinute: int(21 * speedup),
		HoldAtPeak:    120 / speedup,
	}
	// The managed and unmanaged runs are independent simulations; fan
	// them out (each builds its own engine and platform).
	runs := [2]*ScenarioResult{}
	err := forEachPar(2, func(i int) error {
		cfg := DefaultScenario(seed, i == 0)
		cfg.Profile = profile
		for _, m := range mutate {
			if m != nil {
				m(&cfg)
			}
		}
		r, err := mustScenario(cfg)
		runs[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	return &PaperRuns{Managed: runs[0], Unmanaged: runs[1], Speedup: speedup}, nil
}

// relativize shifts a series so the workload start is t=0, matching the
// paper's figures.
func relativize(s *Series, t0 float64) *Series {
	out := metrics.NewSeries(s.Name)
	for _, p := range s.Points {
		if p.T < t0 {
			continue
		}
		out.Add(p.T-t0, p.V)
	}
	return out
}

// Figure5 renders the dynamically adjusted number of replicas over time
// for both tiers (paper Fig. 5).
func (pr *PaperRuns) Figure5() string {
	m := pr.Managed
	c := &Chart{
		Title:  "Figure 5. Dynamically adjusted number of replicas",
		YLabel: "# of replicas",
		YMax:   4,
		Series: []ChartSeries{
			report.FromSeries(relativize(m.DB.Replicas, m.WorkloadStart), 'D'),
			report.FromSeries(relativize(m.App.Replicas, m.WorkloadStart), 'A'),
		},
	}
	out := c.Render()
	out += fmt.Sprintf("  peak replicas: database=%d application=%d; reconfigurations=%d\n",
		int(m.DB.Replicas.Max()), int(m.App.Replicas.Max()), m.Reconfigurations)
	return out
}

// tierFigure renders one tier's CPU behaviour with and without Jade,
// with thresholds and the replica count (paper Figs. 6 and 7).
func (pr *PaperRuns) tierFigure(title string, managed, unmanaged TierTrace, t0m, t0u float64) string {
	c := &Chart{
		Title:  title,
		YLabel: "CPU usage",
		YMax:   1.0,
		Series: []ChartSeries{
			report.FromSeries(relativize(unmanaged.CPUSmoothed, t0u), 'u'),
			report.FromSeries(relativize(managed.CPUSmoothed, t0m), '*'),
		},
		HLines: []HLine{
			{Name: fmt.Sprintf("max threshold (%.2f)", managed.Max), Value: managed.Max, Glyph: '='},
			{Name: fmt.Sprintf("min threshold (%.2f)", managed.Min), Value: managed.Min, Glyph: '-'},
		},
	}
	c.Series[0].Name = "CPU without Jade"
	c.Series[1].Name = "CPU with Jade (moving average)"
	out := c.Render()
	rep := &Chart{
		Title:  "replica count (with Jade)",
		Height: 5,
		YMax:   4,
		Series: []ChartSeries{report.FromSeries(relativize(managed.Replicas, t0m), '#')},
	}
	out += rep.Render()
	return out
}

// Figure6 renders the database tier behaviour (paper Fig. 6).
func (pr *PaperRuns) Figure6() string {
	return pr.tierFigure("Figure 6. Behavior of the database tier",
		pr.Managed.DB, pr.Unmanaged.DB,
		pr.Managed.WorkloadStart, pr.Unmanaged.WorkloadStart)
}

// Figure7 renders the application tier behaviour (paper Fig. 7).
func (pr *PaperRuns) Figure7() string {
	return pr.tierFigure("Figure 7. Behavior of the application tier",
		pr.Managed.App, pr.Unmanaged.App,
		pr.Managed.WorkloadStart, pr.Unmanaged.WorkloadStart)
}

// latencyFigure renders client latency and the workload profile.
func latencyFigure(title string, r *ScenarioResult) string {
	lat := metrics.NewSeries("latency (ms)")
	for _, p := range r.Stats.Latency.Points {
		if p.T < r.WorkloadStart {
			continue
		}
		lat.Add(p.T-r.WorkloadStart, p.V*1000)
	}
	wl := metrics.NewSeries("workload (# clients x100 ms)")
	for _, p := range r.Stats.Workload.Points {
		if p.T < r.WorkloadStart {
			continue
		}
		wl.Add(p.T-r.WorkloadStart, p.V*100)
	}
	c := &Chart{
		Title:  title,
		YLabel: "latency ms",
		Series: []ChartSeries{
			report.FromSeries(wl, 'w'),
			report.FromSeries(lat, '*'),
		},
	}
	s := r.Stats.LatencySummary()
	out := c.Render()
	out += fmt.Sprintf("  latency: mean=%.0f ms  p50=%.0f ms  p99=%.0f ms  max=%.0f ms  (%d requests)\n",
		s.Mean*1000, s.P50*1000, s.P99*1000, s.Max*1000, s.Count)
	return out
}

// Figure8 renders response time without Jade (paper Fig. 8).
func (pr *PaperRuns) Figure8() string {
	return latencyFigure("Figure 8. Response time without Jade", pr.Unmanaged)
}

// Figure9 renders response time with Jade (paper Fig. 9).
func (pr *PaperRuns) Figure9() string {
	return latencyFigure("Figure 9. Response time with Jade", pr.Managed)
}

// Summary compares the headline numbers of the two runs — the paper's
// claim is a stable managed latency (~590 ms) versus a diverging
// unmanaged latency (~10.42 s average).
func (pr *PaperRuns) Summary() string {
	m, u := pr.Managed.Stats.LatencySummary(), pr.Unmanaged.Stats.LatencySummary()
	t := &TextTable{
		Title:   "Paper scenario summary (ramp 80 -> 500 -> 80 clients)",
		Headers: []string{"", "with Jade", "without Jade"},
	}
	t.AddRow("Mean latency (ms)", fmt.Sprintf("%.0f", m.Mean*1000), fmt.Sprintf("%.0f", u.Mean*1000))
	t.AddRow("Max latency (ms)", fmt.Sprintf("%.0f", m.Max*1000), fmt.Sprintf("%.0f", u.Max*1000))
	t.AddRow("Completed requests", fmt.Sprintf("%d", pr.Managed.Stats.Completed),
		fmt.Sprintf("%d", pr.Unmanaged.Stats.Completed))
	t.AddRow("Failed requests", fmt.Sprintf("%d", pr.Managed.Stats.Failed),
		fmt.Sprintf("%d", pr.Unmanaged.Stats.Failed))
	t.AddRow("Peak db replicas", fmt.Sprintf("%.0f", pr.Managed.DB.Replicas.Max()), "1")
	t.AddRow("Peak app replicas", fmt.Sprintf("%.0f", pr.Managed.App.Replicas.Max()), "1")
	t.AddRow("Reconfigurations", fmt.Sprintf("%d", pr.Managed.Reconfigurations), "0")
	t.AddRow("Peak nodes used", fmt.Sprintf("%d", pr.Managed.PeakNodesUsed),
		fmt.Sprintf("%d", pr.Unmanaged.PeakNodesUsed))
	t.AddRow("Node-seconds", fmt.Sprintf("%.0f", pr.Managed.NodeSeconds),
		fmt.Sprintf("%.0f", pr.Unmanaged.NodeSeconds))
	out := t.Render()
	if u.Mean > 0 && m.Mean > 0 {
		out += fmt.Sprintf("latency improvement with Jade: %.1fx\n", u.Mean/m.Mean)
	}
	return out
}

// CSVs returns the figure data as named CSV documents for external
// plotting.
func (pr *PaperRuns) CSVs() map[string]string {
	m, u := pr.Managed, pr.Unmanaged
	return map[string]string{
		"figure5_replicas.csv": report.CSV(5,
			relativize(m.DB.Replicas, m.WorkloadStart),
			relativize(m.App.Replicas, m.WorkloadStart)),
		"figure6_db_cpu.csv": report.CSV(5,
			relativize(m.DB.CPUSmoothed, m.WorkloadStart),
			relativize(u.DB.CPUSmoothed, u.WorkloadStart)),
		"figure7_app_cpu.csv": report.CSV(5,
			relativize(m.App.CPUSmoothed, m.WorkloadStart),
			relativize(u.App.CPUSmoothed, u.WorkloadStart)),
		"figure8_latency_without.csv": report.CSV(5,
			relativize(u.Stats.Latency, u.WorkloadStart),
			relativize(u.Stats.Workload, u.WorkloadStart)),
		"figure9_latency_with.csv": report.CSV(5,
			relativize(m.Stats.Latency, m.WorkloadStart),
			relativize(m.Stats.Workload, m.WorkloadStart)),
	}
}

// Table1Row is one column of the paper's Table 1.
type Table1Row struct {
	Throughput float64 // requests per second
	RespTimeMS float64 // mean response time, milliseconds
	CPUPercent float64 // mean CPU usage across involved nodes
	MemPercent float64 // mean memory usage across involved nodes
}

// Table1Result reproduces the paper's intrusivity measurement (Table 1):
// the same medium constant workload run with Jade's managers armed (no
// reconfigurations fire at this load) and without Jade.
type Table1Result struct {
	With    Table1Row
	Without Table1Row
}

// RunTable1 executes the two intrusivity runs: a constant medium
// workload (80 clients, as in the paper's scenario base load) for the
// given duration.
func RunTable1(seed int64, duration float64) (*Table1Result, error) {
	if duration <= 0 {
		duration = 600
	}
	row := func(managed bool) (Table1Row, error) {
		cfg := DefaultScenario(seed, managed)
		cfg.Profile = ConstantProfile{Clients: 80, Length: duration}
		r, err := mustScenario(cfg)
		if err != nil {
			return Table1Row{}, err
		}
		if managed && r.Reconfigurations != 0 {
			return Table1Row{}, fmt.Errorf("jade: table 1 run reconfigured %d times; the medium workload must be steady", r.Reconfigurations)
		}
		return Table1Row{
			Throughput: r.Throughput(),
			RespTimeMS: r.MeanLatency() * 1000,
			CPUPercent: r.NodeCPUPercent,
			MemPercent: r.NodeMemPercent,
		}, nil
	}
	var rows [2]Table1Row
	err := forEachPar(2, func(i int) error {
		r, err := row(i == 0)
		rows[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	return &Table1Result{With: rows[0], Without: rows[1]}, nil
}

// Render formats Table 1 as in the paper.
func (t *Table1Result) Render() string {
	tb := &TextTable{
		Title:   "Table 1. Performance overhead",
		Headers: []string{"", "with Jade", "without Jade"},
	}
	tb.AddRow("Throughput (req./s)",
		fmt.Sprintf("%.0f", t.With.Throughput), fmt.Sprintf("%.0f", t.Without.Throughput))
	tb.AddRow("Resp.time (ms)",
		fmt.Sprintf("%.0f", t.With.RespTimeMS), fmt.Sprintf("%.0f", t.Without.RespTimeMS))
	tb.AddRow("CPU usage (%)",
		fmt.Sprintf("%.2f", t.With.CPUPercent), fmt.Sprintf("%.2f", t.Without.CPUPercent))
	tb.AddRow("Memory usage (%)",
		fmt.Sprintf("%.1f", t.With.MemPercent), fmt.Sprintf("%.1f", t.Without.MemPercent))
	return tb.Render()
}

// Figure4 demonstrates the qualitative reconfiguration scenario (paper
// §5.1/Fig. 4): rebinding Apache1 from Tomcat1 to Tomcat2 as four
// operations on the management layer, returning a transcript with the
// regenerated worker.properties. It is implemented in example form in
// examples/reconfigure; this helper runs the same steps programmatically
// and returns the transcript.
func Figure4(seed int64) (string, error) {
	transcript, err := runFigure4(seed)
	if err != nil {
		return "", err
	}
	return transcript, nil
}

const figure4ADL = `<?xml version="1.0"?>
<definition name="fig4">
  <component name="apache1" wrapper="apache"/>
  <component name="tomcat1" wrapper="tomcat"/>
  <component name="tomcat2" wrapper="tomcat">
    <attribute name="ajp-port" value="8098"/>
  </component>
  <component name="cjdbc1" wrapper="cjdbc"/>
  <component name="mysql1" wrapper="mysql">
    <attribute name="dump" value="rubis"/>
  </component>
  <binding client="apache1.ajp" server="tomcat1.ajp"/>
  <binding client="tomcat1.jdbc" server="cjdbc1.jdbc"/>
  <binding client="tomcat2.jdbc" server="cjdbc1.jdbc"/>
  <binding client="cjdbc1.backends" server="mysql1.sql"/>
</definition>
`

func runFigure4(seed int64) (string, error) {
	var b strings.Builder
	p := NewPlatform(PlatformOptions{Seed: seed, Nodes: 9})
	ds := Dataset{Regions: 5, Categories: 5, Users: 20, Items: 20, BidsPerItem: 1, CommentsPerUser: 1}
	dump, err := ds.InitialDatabase(seed)
	if err != nil {
		return "", err
	}
	p.RegisterDump("rubis", dump)
	def, err := ParseADL(figure4ADL)
	if err != nil {
		return "", err
	}
	var dep *Deployment
	derr := fmt.Errorf("jade: deployment did not complete")
	p.Deploy(def, func(d *Deployment, err error) { dep, derr = d, err })
	p.Eng.Run()
	if derr != nil {
		return "", derr
	}
	apache := dep.MustComponent("apache1")
	tomcat1 := dep.MustComponent("tomcat1")
	tomcat2 := dep.MustComponent("tomcat2")
	step := func(format string, args ...any) {
		fmt.Fprintf(&b, "[t=%7.1fs] %s\n", p.Eng.Now(), fmt.Sprintf(format, args...))
	}
	step("deployed %s; apache1 bound to tomcat1", def.Name)

	var serr error
	step("Apache1.stop()")
	p.StopComponent(apache, func(err error) { serr = err })
	p.Eng.Run()
	if serr != nil {
		return "", serr
	}
	step("Apache1.unbind(\"ajp-itf\")")
	if err := apache.Unbind("ajp", tomcat1.MustInterface("ajp")); err != nil {
		return "", err
	}
	step("Apache1.bind(\"ajp-itf\", tomcat2-itf)")
	if err := apache.Bind("ajp", tomcat2.MustInterface("ajp")); err != nil {
		return "", err
	}
	step("Apache1.start()")
	serr = fmt.Errorf("start never completed")
	p.StartComponent(apache, func(err error) { serr = err })
	p.Eng.Run()
	if serr != nil {
		return "", serr
	}
	step("reconfiguration complete")

	// Show the regenerated legacy configuration, as in the paper's text.
	aw := apache.Content().(*core.ApacheWrapper)
	raw, err := p.FS.ReadFile(aw.Server().WorkersPath())
	if err != nil {
		return "", err
	}
	b.WriteString("\nregenerated worker.properties:\n")
	b.Write(raw)
	return b.String(), nil
}
