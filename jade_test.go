package jade

import (
	"strings"
	"testing"
)

// fastRuns executes the paper scenario at 5x time compression (same
// client trajectory, shorter run) and caches it across tests.
var cachedRuns *PaperRuns

func fastRuns(t *testing.T) *PaperRuns {
	t.Helper()
	if cachedRuns == nil {
		pr, err := RunPaperScenario(1, 5)
		if err != nil {
			t.Fatal(err)
		}
		cachedRuns = pr
	}
	return cachedRuns
}

func TestPaperScenarioLatencyShape(t *testing.T) {
	pr := fastRuns(t)
	m := pr.Managed.Stats.LatencySummary()
	u := pr.Unmanaged.Stats.LatencySummary()
	// The paper's headline: Jade keeps latency stable (~590 ms) while
	// the unmanaged system's latency diverges (10.42 s average, with
	// peaks in the hundreds of seconds). We assert the *shape*: at
	// least an order of magnitude between the means, and unmanaged
	// peaks beyond a minute.
	if u.Mean < 10*m.Mean {
		t.Fatalf("managed mean %.3fs vs unmanaged %.3fs: expected >=10x gap", m.Mean, u.Mean)
	}
	if u.Max < 60 {
		t.Fatalf("unmanaged max latency %.1fs: expected thrashing beyond 60s", u.Max)
	}
	if m.Max > u.Max/3 {
		t.Fatalf("managed max %.1fs not clearly below unmanaged max %.1fs", m.Max, u.Max)
	}
	if pr.Managed.Stats.Failed != 0 || pr.Unmanaged.Stats.Failed != 0 {
		t.Fatalf("failed requests: managed=%d unmanaged=%d",
			pr.Managed.Stats.Failed, pr.Unmanaged.Stats.Failed)
	}
	// The managed run completes more work (closed loop: faster
	// responses mean more requests issued).
	if pr.Managed.Stats.Completed <= pr.Unmanaged.Stats.Completed {
		t.Fatalf("managed completed %d <= unmanaged %d",
			pr.Managed.Stats.Completed, pr.Unmanaged.Stats.Completed)
	}
}

func TestPaperScenarioReplicaTrajectory(t *testing.T) {
	pr := fastRuns(t)
	m := pr.Managed
	// Fig. 5's trajectory: the database tier scales to 3 backends and
	// the application tier to 2 servers at peak load.
	if got := int(m.DB.Replicas.Max()); got != 3 {
		t.Fatalf("peak db replicas = %d, want 3", got)
	}
	if got := int(m.App.Replicas.Max()); got != 2 {
		t.Fatalf("peak app replicas = %d, want 2", got)
	}
	// The db tier saturates first: its first grow precedes the app
	// tier's (paper: db at 180 clients, app at 420).
	firstGrow := func(s *Series) float64 {
		for _, p := range s.Points {
			if p.V >= 2 {
				return p.T
			}
		}
		return -1
	}
	dbT, appT := firstGrow(m.DB.Replicas), firstGrow(m.App.Replicas)
	if dbT < 0 || appT < 0 {
		t.Fatal("one tier never grew")
	}
	if dbT >= appT {
		t.Fatalf("db tier grew at %.0fs, after app tier at %.0fs; paper order is db first", dbT, appT)
	}
	// Replicas come back down as the load recedes.
	if final := m.DB.Replicas.Last().V; final >= 3 {
		t.Fatalf("db replicas did not shrink after the peak: final=%v", final)
	}
	if final := m.App.Replicas.Last().V; final != 1 {
		t.Fatalf("app replicas final = %v, want 1", final)
	}
	// Reconfiguration count: a handful, not a storm (paper shows ~6
	// transitions).
	if m.Reconfigurations < 4 || m.Reconfigurations > 12 {
		t.Fatalf("reconfigurations = %d, want a handful", m.Reconfigurations)
	}
}

func TestPaperScenarioCPURegulation(t *testing.T) {
	pr := fastRuns(t)
	// Without Jade the database saturates (moving average reaches ~1.0).
	if got := pr.Unmanaged.DB.CPUSmoothed.Max(); got < 0.95 {
		t.Fatalf("unmanaged db cpu peak = %.2f, expected saturation", got)
	}
	// With Jade the post-warmup moving average respects the max
	// threshold most of the time; transient overshoot is bounded.
	over := 0
	for _, p := range pr.Managed.DB.CPUSmoothed.Points {
		if p.V > 0.95 {
			over++
		}
	}
	frac := float64(over) / float64(pr.Managed.DB.CPUSmoothed.Len()+1)
	if frac > 0.10 {
		t.Fatalf("managed db cpu above 0.95 for %.0f%% of samples", frac*100)
	}
	// Dynamic provisioning saves resources versus static peak
	// provisioning: managed node-seconds < 7 nodes for the whole run.
	dur := pr.Managed.WorkloadEnd - pr.Managed.WorkloadStart
	if pr.Managed.NodeSeconds >= 7*dur {
		t.Fatalf("node-seconds %.0f not below static 7-node bill %.0f",
			pr.Managed.NodeSeconds, 7*dur)
	}
}

func TestFigureRenderersProduceOutput(t *testing.T) {
	pr := fastRuns(t)
	checks := []struct {
		name, out, want string
	}{
		{"Figure5", pr.Figure5(), "Dynamically adjusted number of replicas"},
		{"Figure6", pr.Figure6(), "database tier"},
		{"Figure7", pr.Figure7(), "application tier"},
		{"Figure8", pr.Figure8(), "without Jade"},
		{"Figure9", pr.Figure9(), "with Jade"},
		{"Summary", pr.Summary(), "latency improvement with Jade"},
	}
	for _, c := range checks {
		if !strings.Contains(c.out, c.want) {
			t.Errorf("%s output missing %q", c.name, c.want)
		}
		if len(c.out) < 100 {
			t.Errorf("%s output suspiciously short (%d bytes)", c.name, len(c.out))
		}
	}
	csvs := pr.CSVs()
	for _, name := range []string{"figure5_replicas.csv", "figure6_db_cpu.csv",
		"figure7_app_cpu.csv", "figure8_latency_without.csv", "figure9_latency_with.csv"} {
		body := csvs[name]
		if !strings.HasPrefix(body, "time,") || strings.Count(body, "\n") < 10 {
			t.Errorf("%s malformed or too short", name)
		}
	}
}

func TestTable1Intrusivity(t *testing.T) {
	res, err := RunTable1(1, 400)
	if err != nil {
		t.Fatal(err)
	}
	w, wo := res.With, res.Without
	// Throughput identical (closed loop at medium load): ~80/7 ≈ 11.4.
	if w.Throughput < 9 || w.Throughput > 14 {
		t.Fatalf("with-Jade throughput = %.1f, want ≈11.4", w.Throughput)
	}
	if rel := (w.Throughput - wo.Throughput) / wo.Throughput; rel < -0.05 || rel > 0.05 {
		t.Fatalf("throughput differs by %.1f%%: %v vs %v", rel*100, w.Throughput, wo.Throughput)
	}
	// Response time overhead is marginal (paper: 89 vs 87 ms).
	if w.RespTimeMS > wo.RespTimeMS*1.15 {
		t.Fatalf("resp time with Jade %.1f ms vs %.1f ms: overhead too large",
			w.RespTimeMS, wo.RespTimeMS)
	}
	// CPU overhead below one percentage point (paper: 12.74 vs 12.42).
	if d := w.CPUPercent - wo.CPUPercent; d < 0 || d > 1.0 {
		t.Fatalf("cpu delta = %.2f points (%.2f vs %.2f)", d, w.CPUPercent, wo.CPUPercent)
	}
	// Memory overhead present but small (paper: 20.1 vs 17.5).
	if d := w.MemPercent - wo.MemPercent; d < 1.0 || d > 5.0 {
		t.Fatalf("memory delta = %.2f points (%.2f vs %.2f)", d, w.MemPercent, wo.MemPercent)
	}
	out := res.Render()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "Memory usage") {
		t.Fatalf("Table 1 render malformed:\n%s", out)
	}
}

func TestFigure4Transcript(t *testing.T) {
	out, err := Figure4(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`Apache1.stop()`,
		`Apache1.unbind("ajp-itf")`,
		`Apache1.bind("ajp-itf", tomcat2-itf)`,
		`Apache1.start()`,
		"worker.tomcat2.port=8098",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("transcript missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "worker.tomcat1") {
		t.Fatal("transcript still references tomcat1 worker")
	}
}

func TestAblationSmoothing(t *testing.T) {
	rows, err := RunAblationSmoothing(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	noSmooth, paper := rows[0], rows[2]
	if noSmooth.Reconfigurations < paper.Reconfigurations {
		t.Fatalf("no-smoothing reconfigs (%d) < paper windows (%d): smoothing should reduce churn",
			noSmooth.Reconfigurations, paper.Reconfigurations)
	}
	out := RenderAblation("smoothing", rows)
	if !strings.Contains(out, "no smoothing") {
		t.Fatal("render missing variant")
	}
}

func TestAblationInhibition(t *testing.T) {
	rows, err := RunAblationInhibition(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	none, paper := rows[0], rows[1]
	if none.Reconfigurations < paper.Reconfigurations {
		t.Fatalf("no-inhibition reconfigs (%d) < with inhibition (%d)",
			none.Reconfigurations, paper.Reconfigurations)
	}
}

func TestAblationThresholds(t *testing.T) {
	rows, err := RunAblationThresholds(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The loose pair (0.10/0.95) must provision later/less than the
	// tight pair (0.20/0.60): fewer node-seconds or higher latency.
	tight, loose := rows[0], rows[3]
	if !(loose.NodeSeconds < tight.NodeSeconds || loose.MeanLatencyMS > tight.MeanLatencyMS) {
		t.Fatalf("threshold sweep shows no tradeoff: tight=%+v loose=%+v", tight, loose)
	}
}

func TestAblationBalancerPolicy(t *testing.T) {
	rows, err := RunAblationBalancerPolicy(1)
	if err != nil {
		t.Fatal(err)
	}
	lp, rr := rows[0], rows[1]
	if lp.Name != "least-pending" || rr.Name != "round-robin" {
		t.Fatalf("unexpected rows: %+v", rows)
	}
	// Least-pending should not be meaningfully worse than round-robin.
	if lp.MeanLatencyMS > rr.MeanLatencyMS*1.25 {
		t.Fatalf("least-pending %.0f ms much worse than round-robin %.0f ms",
			lp.MeanLatencyMS, rr.MeanLatencyMS)
	}
}

func TestAblationRecoveryLogReplay(t *testing.T) {
	rows, err := RunAblationRecoveryLogReplay(1, []int{0, 200, 800})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].SyncSeconds < rows[i-1].SyncSeconds {
			t.Fatalf("sync time not monotone in log length: %+v", rows)
		}
	}
	// 800 replayed writes at 0.002 CPU-s each dominate the base delay.
	if rows[2].SyncSeconds < rows[0].SyncSeconds+1 {
		t.Fatalf("long replay (%.2fs) not clearly above empty replay (%.2fs)",
			rows[2].SyncSeconds, rows[0].SyncSeconds)
	}
	if !strings.Contains(RenderReplay(rows), "800") {
		t.Fatal("render missing data")
	}
}

func TestScenarioDeterminism(t *testing.T) {
	runOnce := func() (uint64, float64) {
		cfg := DefaultScenario(7, true)
		cfg.Profile = RampProfile{Base: 40, Peak: 200, StepPerMinute: 160, HoldAtPeak: 30}
		r, err := RunScenario(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r.Stats.Completed, r.MeanLatency()
	}
	c1, l1 := runOnce()
	c2, l2 := runOnce()
	if c1 != c2 || l1 != l2 {
		t.Fatalf("scenario not deterministic: (%d, %v) vs (%d, %v)", c1, l1, c2, l2)
	}
}

func TestRecoveryScenario(t *testing.T) {
	cfg := DefaultScenario(3, true)
	cfg.Recovery = true
	cfg.Profile = ConstantProfile{Clients: 60, Length: 400}
	cfg.FailComponent = "tomcat1"
	cfg.FailAt = 100
	r, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Repairs != 1 {
		t.Fatalf("repairs = %d, want 1", r.Repairs)
	}
	// Service continues after the repair: requests complete in the
	// second half of the run.
	late := 0
	for _, p := range r.Stats.Latency.Points {
		if p.T > r.WorkloadStart+250 {
			late++
		}
	}
	if late == 0 {
		t.Fatal("no completions after the repair")
	}
	// A single-replica tier implies an outage window of roughly the
	// repair latency (node allocation + install + start ≈ 20 s); with
	// 60 clients cycling every ~7 s that bounds failures well below the
	// ~2600 successful completions of the run.
	if r.Stats.Failed > 300 {
		t.Fatalf("failed = %d, repair did not restore service promptly", r.Stats.Failed)
	}
	if r.Stats.Completed < uint64(r.Stats.Failed)*5 {
		t.Fatalf("completions (%d) not dominating failures (%d)",
			r.Stats.Completed, r.Stats.Failed)
	}
}

func TestPlatformFacadeBasics(t *testing.T) {
	p := NewPlatform(DefaultPlatformOptions())
	if got := p.WrapperKinds(); len(got) != 6 {
		t.Fatalf("wrapper kinds = %v", got)
	}
	if got := p.SIS.Packages(); len(got) != 6 {
		t.Fatalf("packages = %v", got)
	}
	def, err := ParseADL(ThreeTierADL)
	if err != nil {
		t.Fatal(err)
	}
	if err := def.Validate(nil); err != nil {
		t.Fatal(err)
	}
}
