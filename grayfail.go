package jade

import "fmt"

// GrayFailureADL is the gray-failure testbed: PLB balancing three Tomcat
// replicas over C-JDBC with two mirrored MySQL backends. Wide enough
// that one slow replica per tier leaves healthy capacity for a policy to
// route around.
const GrayFailureADL = `<?xml version="1.0"?>
<definition name="rubis-grayfail">
  <component name="plb1" wrapper="plb"/>
  <composite name="app-tier">
    <component name="tomcat1" wrapper="tomcat"/>
    <component name="tomcat2" wrapper="tomcat"/>
    <component name="tomcat3" wrapper="tomcat"/>
  </composite>
  <composite name="db-tier">
    <component name="cjdbc1" wrapper="cjdbc"/>
    <component name="mysql1" wrapper="mysql">
      <attribute name="dump" value="rubis"/>
    </component>
    <component name="mysql2" wrapper="mysql">
      <attribute name="dump" value="rubis"/>
    </component>
  </composite>
  <binding client="plb1.workers" server="tomcat1.http"/>
  <binding client="plb1.workers" server="tomcat2.http"/>
  <binding client="plb1.workers" server="tomcat3.http"/>
  <binding client="tomcat1.jdbc" server="cjdbc1.jdbc"/>
  <binding client="tomcat2.jdbc" server="cjdbc1.jdbc"/>
  <binding client="tomcat3.jdbc" server="cjdbc1.jdbc"/>
  <binding client="cjdbc1.backends" server="mysql1.sql"/>
  <binding client="cjdbc1.backends" server="mysql2.sql"/>
</definition>
`

// GrayFailVariant is one routing policy's run of the gray-failure
// experiment (see RunGrayFailure).
type GrayFailVariant struct {
	Name   string
	Policy string
	// P99 is the client-perceived 99th-percentile latency in seconds.
	P99    float64
	Result *ScenarioResult
}

// GrayFailureScenario returns the shared configuration of the
// gray-failure experiment for one routing policy: an unmanaged,
// invariant-checked constant-load run over GrayFailureADL where chaos
// degrades (but never kills) one replica per tier. tomcat2 is slowed
// severely (fifteen stacked CPU hogs leave it ~1/16 speed) and mysql2
// moderately (writes broadcast to every backend, so a crawling replica
// would stall both policies equally); heartbeats stay CPU-free, so no
// failure detector would ever suspect either replica — the definition of
// a gray failure. Only the routing policy distinguishes variants.
func GrayFailureScenario(seed int64, policy string, quick bool) ScenarioConfig {
	cfg := DefaultScenario(seed, false)
	clients, length := 60, 240.0
	if quick {
		clients, length = 40, 120.0
	}
	cfg.Profile = ConstantProfile{Clients: clients, Length: length}
	cfg.ADL = GrayFailureADL
	cfg.AppReplicas = []string{"tomcat1", "tomcat2", "tomcat3"}
	cfg.DBReplicas = []string{"mysql1", "mysql2"}
	cfg.Invariants = true
	cfg.DrainSeconds = 30
	cfg.Routing = RoutingConfig{App: policy, DB: policy}
	slowAt := 20.0
	cfg.Chaos = ChaosSchedule{
		{At: slowAt, Kind: ChaosSlow, Target: "mysql2", Duration: length - slowAt},
	}
	for i := 0; i < 15; i++ {
		cfg.Chaos = append(cfg.Chaos,
			ChaosEvent{At: slowAt, Kind: ChaosSlow, Target: "tomcat2", Duration: length - slowAt})
	}
	return cfg
}

// RunGrayFailure runs the gray-failure experiment once per routing
// policy and reports the client-perceived tail latency of each. Under
// round-robin every third request lands on the crawling Tomcat and p99
// collapses; the balanced scorer sees the slow replica's latency
// reservoir grow and organically routes around it — no detector, no
// membership change. quick shrinks the run for smoke tests. Variants
// fan out over Parallelism() workers; results are deterministic per
// seed regardless of the fan-out width.
func RunGrayFailure(seed int64, quick bool) ([]GrayFailVariant, string, error) {
	variants := []GrayFailVariant{
		{Name: "round-robin", Policy: "round-robin"},
		{Name: "least-pending", Policy: "least-pending"},
		{Name: "balanced", Policy: "balanced"},
	}
	errs := make([]error, len(variants))
	_ = forEachPar(len(variants), func(i int) error {
		r, err := RunScenario(GrayFailureScenario(seed, variants[i].Policy, quick))
		if err != nil {
			errs[i] = fmt.Errorf("grayfail %q: %w", variants[i].Name, err)
			return errs[i]
		}
		variants[i].Result = r
		variants[i].P99 = r.RequestLatency.Quantile(0.99)
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return nil, "", err
		}
	}

	title := "Routing under gray failure (one slow Tomcat + one slow MySQL, constant 60 clients, 240 s)"
	if quick {
		title = "Routing under gray failure (one slow Tomcat + one slow MySQL, constant 40 clients, 120 s, quick)"
	}
	tb := &TextTable{
		Title:   title,
		Headers: []string{"policy", "p50 (s)", "p95 (s)", "p99 (s)", "mean (s)", "completed", "failed", "violation"},
	}
	for _, v := range variants {
		r := v.Result
		violation := "none"
		if r.InvariantViolation != nil {
			violation = r.InvariantViolation.Checker
		}
		tb.AddRow(v.Name,
			fmt.Sprintf("%.3f", r.RequestLatency.Quantile(0.50)),
			fmt.Sprintf("%.3f", r.RequestLatency.Quantile(0.95)),
			fmt.Sprintf("%.3f", v.P99),
			fmt.Sprintf("%.3f", r.MeanLatency()),
			fmt.Sprintf("%d", r.Stats.Completed),
			fmt.Sprintf("%d", r.Stats.Failed),
			violation)
	}
	return variants, tb.Render(), nil
}
