package jade

import (
	"fmt"
	"math"
	"strings"
)

// CrossValidation is one fluid-vs-discrete comparison on the paper
// scenario: the same seed and profile run through both workload engines,
// compared on what the control loops actually see (the smoothed CPU
// curves) and what they actually did (the resize decision sequences).
type CrossValidation struct {
	Seed    int64
	Speedup float64
	// AppCPURMS / DBCPURMS are the root-mean-square distances between
	// the two engines' smoothed tier CPU curves, sampled every 5 s over
	// the run (CPU is a fraction, so 0.05 means ±5%).
	AppCPURMS, DBCPURMS float64
	// AppFluid/AppDiscrete and DBFluid/DBDiscrete are the ordered resize
	// decision sequences ("1->2 2->3 ...") each engine's managers took.
	AppFluid, AppDiscrete []string
	DBFluid, DBDiscrete   []string
	// Fluid and Discrete are the underlying runs.
	Fluid, Discrete *ScenarioResult
}

// DecisionsMatch reports whether both tiers took identical resize
// decision sequences under the two engines.
func (cv *CrossValidation) DecisionsMatch() bool {
	return seqEqual(cv.AppFluid, cv.AppDiscrete) && seqEqual(cv.DBFluid, cv.DBDiscrete)
}

func seqEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// resizeSequence extracts the ordered replica-count transitions from a
// tier's Replicas series: one "a->b" entry per change, timing ignored.
func resizeSequence(s *Series) []string {
	var out []string
	started := false
	var prev float64
	for _, p := range s.Points {
		if !started {
			prev, started = p.V, true
			continue
		}
		if p.V != prev {
			out = append(out, fmt.Sprintf("%d->%d", int(prev), int(p.V)))
			prev = p.V
		}
	}
	return out
}

// seriesRMS is the root-mean-square distance between two series sampled
// every step seconds over [t0, t1].
func seriesRMS(a, b *Series, t0, t1, step float64) float64 {
	var sum float64
	n := 0
	for t := t0; t < t1; t += step {
		d := a.At(t) - b.At(t)
		sum += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// FluidCrossValidation runs the paper scenario (time-compressed by
// speedup) once per workload engine on the same seed and compares them.
// This is the fluid engine's accuracy gate: the managers must see CPU
// curves within a few percent RMS of the discrete engine's and take the
// same resize decisions in the same order.
func FluidCrossValidation(seed int64, speedup float64) (*CrossValidation, error) {
	run := func(mode string) (*ScenarioResult, error) {
		cfg := DefaultScenario(seed, true)
		cfg.WorkloadMode = mode
		r := PaperRamp()
		r.StepPerMinute = int(21 * speedup)
		r.HoldAtPeak = 120 / speedup
		cfg.Profile = r
		return RunScenario(cfg)
	}
	f, err := run(WorkloadFluid)
	if err != nil {
		return nil, err
	}
	d, err := run(WorkloadDiscrete)
	if err != nil {
		return nil, err
	}
	horizon := f.Config.Profile.Duration() + f.Config.DrainSeconds
	return &CrossValidation{
		Seed:        seed,
		Speedup:     speedup,
		AppCPURMS:   seriesRMS(f.App.CPUSmoothed, d.App.CPUSmoothed, 10, horizon, 5),
		DBCPURMS:    seriesRMS(f.DB.CPUSmoothed, d.DB.CPUSmoothed, 10, horizon, 5),
		AppFluid:    resizeSequence(f.App.Replicas),
		AppDiscrete: resizeSequence(d.App.Replicas),
		DBFluid:     resizeSequence(f.DB.Replicas),
		DBDiscrete:  resizeSequence(d.DB.Replicas),
		Fluid:       f,
		Discrete:    d,
	}, nil
}

// renderSeq renders a decision sequence for tables ("-" when empty).
func renderSeq(seq []string) string {
	if len(seq) == 0 {
		return "-"
	}
	return strings.Join(seq, " ")
}
