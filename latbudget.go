package jade

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"jade/internal/obs/attrib"
)

// LatBudgetVariant is one run of the latency-budget experiment (see
// RunLatBudget).
type LatBudgetVariant struct {
	Name   string
	Result *ScenarioResult
	// Dir is the run's artifact directory (deleted before RunLatBudget
	// returns; retained here for the in-run diffs).
	Dir string
}

// latBudgetSlowAt is when (seconds after workload start) the slowapp
// variant's CPU hogs land on tomcat1.
const latBudgetSlowAt = 30.0

// LatBudgetScenario returns the latency-budget experiment's
// configuration for one variant: the managed paper ramp with causal
// request tracing dense enough for per-tier budget percentiles.
//
//   - "baseline" and "replay" are byte-identical configurations — the
//     same-seed determinism pair whose artifacts must diff clean.
//   - "slowapp" additionally parks three CPU hogs on tomcat1 from
//     t+30 s to the end of the ramp, a gray slowdown the budget report
//     must localize as app-tier queueing.
func LatBudgetScenario(seed int64, variant string, quick bool) ScenarioConfig {
	cfg := DefaultScenario(seed, true)
	// 3x is the steepest compression of the paper ramp the default
	// sizing loops still keep up with (60 s inhibition windows); beyond
	// that the db tier collapses and every budget is just db queueing.
	// quick keeps the 3x slope but stops the climb at 300 clients.
	cfg.TraceRequests = 8
	peak := 500
	if quick {
		peak = 300
		cfg.TraceRequests = 4
	}
	cfg.Profile = RampProfile{
		Base:          80,
		Peak:          peak,
		StepPerMinute: 63,
		HoldAtPeak:    40,
	}
	// The app tier is pinned to one replica: left free, the app sizing
	// loop reacts to the slowapp hogs by growing tomcat2 early and the
	// "fault" run comes out *faster* than the baseline — self-repair
	// masking the very regression the diff must localize. Pinning models
	// the capacity-capped deployment where attribution has to carry the
	// diagnosis; the db loop keeps the resize/blame-shift story.
	cfg.MaxAppReplicas = 1
	if variant == "slowapp" {
		// Fifteen stacked hogs leave tomcat1 at ~1/16 speed.
		length := cfg.Profile.Duration()
		for i := 0; i < 15; i++ {
			cfg.Chaos = append(cfg.Chaos, ChaosEvent{
				At: latBudgetSlowAt, Kind: ChaosSlow, Target: "tomcat1",
				Duration: length - latBudgetSlowAt,
			})
		}
	}
	return cfg
}

// firstReplicaChange returns the virtual time a replica-count series
// first moves off its initial value, or -1 if it never does.
func firstReplicaChange(s *Series) float64 {
	if s == nil || len(s.Points) == 0 {
		return -1
	}
	v0 := s.Points[0].V
	for _, p := range s.Points {
		if p.V != v0 {
			return p.T
		}
	}
	return -1
}

// RunLatBudget is the latency-attribution flagship experiment: three
// managed paper-ramp runs (baseline, same-seed replay, and a gray
// app-tier slowdown), each writing the full artifact set, followed by
// the in-run regression diffs. It is self-checking; it errors unless
//
//   - every variant's budget conserves latency (components sum to the
//     root span within 1%) and loses no trace spans,
//   - the baseline's pre-resize p99 blame lands on the tier whose
//     sizing loop acts first, as queueing, and that blame shifts once
//     the loop has acted,
//   - the same-seed pair's budget artifacts are byte-identical and
//     DiffRuns reports them clean, and
//   - DiffRuns flags the slowapp run and localizes it to app/queue.
//
// quick shrinks the ramp for smoke tests. Variants fan out over
// Parallelism() workers; results are deterministic per seed regardless
// of the fan-out width.
func RunLatBudget(seed int64, quick bool) ([]LatBudgetVariant, string, error) {
	variants := []LatBudgetVariant{{Name: "baseline"}, {Name: "replay"}, {Name: "slowapp"}}
	root, err := os.MkdirTemp("", "jade-latbudget-")
	if err != nil {
		return nil, "", err
	}
	defer os.RemoveAll(root)
	errs := make([]error, len(variants))
	_ = forEachPar(len(variants), func(i int) error {
		v := &variants[i]
		v.Dir = filepath.Join(root, v.Name)
		cfg := LatBudgetScenario(seed, v.Name, quick)
		cfg.MetricsDir = v.Dir
		r, err := RunScenario(cfg)
		if err != nil {
			errs[i] = fmt.Errorf("latbudget %q: %w", v.Name, err)
			return errs[i]
		}
		v.Result = r
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return nil, "", err
		}
	}

	// Per-variant invariants: a budget exists, conserves latency, and
	// the span store kept every sampled request.
	for _, v := range variants {
		r := v.Result
		if r.LatencyBudget == nil || r.LatencyBudget.Requests == 0 {
			return nil, "", fmt.Errorf("latbudget %q: no attributed requests", v.Name)
		}
		if r.LatencyBudget.MaxConservationErr > 0.01 {
			return nil, "", fmt.Errorf("latbudget %q: conservation error %.2e exceeds 1%%",
				v.Name, r.LatencyBudget.MaxConservationErr)
		}
		if st := r.Trace().Stat(); st.SpansDropped > 0 {
			return nil, "", fmt.Errorf("latbudget %q: %d spans dropped — budget would undercount",
				v.Name, st.SpansDropped)
		}
	}

	// Pre/post-resize blame on the baseline: before the first sizing
	// action the bottleneck tier's queue must dominate the p99 band, and
	// acting must shift (or shrink) that blame.
	base := &variants[0]
	dbAt := firstReplicaChange(base.Result.DB.Replicas)
	appAt := firstReplicaChange(base.Result.App.Replicas)
	resizeAt, resizeTier := dbAt, "db"
	if dbAt < 0 || (appAt >= 0 && appAt < dbAt) {
		resizeAt, resizeTier = appAt, "app"
	}
	if resizeAt < 0 {
		return nil, "", fmt.Errorf("latbudget baseline: no sizing loop ever acted — the ramp never saturated a tier")
	}
	pre := attrib.BuildReport(base.Result.Attribution.Window(base.Result.WorkloadStart, resizeAt), nil)
	post := attrib.BuildReport(base.Result.Attribution.Window(resizeAt, base.Result.WorkloadEnd), nil)
	preBlame, okPre := pre.Dominant("p99")
	postBlame, okPost := post.Dominant("p99")
	if !okPre || !okPost {
		return nil, "", fmt.Errorf("latbudget baseline: too few traced requests to fill the p99 band")
	}
	if preBlame.Tier != resizeTier || preBlame.Component != attrib.Queue {
		return nil, "", fmt.Errorf("latbudget baseline: pre-resize p99 blame %s/%s, want %s/%s (the tier the sizing loop grew first)",
			preBlame.Tier, preBlame.Component, resizeTier, attrib.Queue)
	}
	sameBlame := postBlame.Tier == preBlame.Tier && postBlame.Component == preBlame.Component
	if sameBlame && postBlame.Share >= preBlame.Share {
		return nil, "", fmt.Errorf("latbudget baseline: p99 blame did not shift after the resize (%s/%s share %.2f -> %.2f)",
			preBlame.Tier, preBlame.Component, preBlame.Share, postBlame.Share)
	}

	// Same-seed determinism: byte-identical budget artifacts, clean diff.
	budgetA, errA := os.ReadFile(filepath.Join(variants[0].Dir, "latency_budget.json"))
	budgetB, errB := os.ReadFile(filepath.Join(variants[1].Dir, "latency_budget.json"))
	if errA != nil || errB != nil {
		return nil, "", fmt.Errorf("latbudget: missing budget artifact: %v / %v", errA, errB)
	}
	if !bytes.Equal(budgetA, budgetB) {
		return nil, "", fmt.Errorf("latbudget: same-seed budget artifacts differ (%d vs %d bytes)",
			len(budgetA), len(budgetB))
	}
	cleanDiff, err := DiffRuns(variants[0].Dir, variants[1].Dir, RunDiffOptions{})
	if err != nil {
		return nil, "", err
	}
	if !cleanDiff.Clean() {
		return nil, "", fmt.Errorf("latbudget: same-seed runs did not diff clean:\n%s", cleanDiff.Render())
	}

	// Injected slowdown: the diff must flag the run and blame app/queue.
	slowDiff, err := DiffRuns(variants[0].Dir, variants[2].Dir, RunDiffOptions{})
	if err != nil {
		return nil, "", err
	}
	if slowDiff.Clean() {
		return nil, "", fmt.Errorf("latbudget: diff did not flag the slowed run")
	}
	if slowDiff.BlameTier != "app" || slowDiff.BlameComponent != attrib.Queue {
		return nil, "", fmt.Errorf("latbudget: slowdown blamed on %s/%s, want app/%s:\n%s",
			slowDiff.BlameTier, slowDiff.BlameComponent, attrib.Queue, slowDiff.Render())
	}

	title := "Latency budgets and run diff (managed paper ramp at 3x, trace 1/8)"
	if quick {
		title = "Latency budgets and run diff (managed 3x ramp to 300 clients, trace 1/4, quick)"
	}
	tb := &TextTable{
		Title: title,
		Headers: []string{"variant", "requests", "attributed", "conservation", "p99 (s)",
			"p99 blame", "share"},
	}
	for i := range variants {
		v := &variants[i]
		r := v.Result
		blame, _ := r.LatencyBudget.Dominant("p99")
		tb.AddRow(v.Name,
			fmt.Sprintf("%d", r.Stats.Completed),
			fmt.Sprintf("%d", r.LatencyBudget.Requests),
			fmt.Sprintf("%.1e", r.LatencyBudget.MaxConservationErr),
			fmt.Sprintf("%.3f", r.RequestLatency.Quantile(0.99)),
			fmt.Sprintf("%s/%s", blame.Tier, blame.Component),
			fmt.Sprintf("%.2f", blame.Share))
	}
	out := tb.Render()
	out += fmt.Sprintf("\nbaseline first resize: %s tier at t=%.0f s; pre-resize p99 blame %s/%s (share %.2f), post-resize %s/%s (share %.2f)\n",
		resizeTier, resizeAt-base.Result.WorkloadStart,
		preBlame.Tier, preBlame.Component, preBlame.Share,
		postBlame.Tier, postBlame.Component, postBlame.Share)
	out += fmt.Sprintf("\nsame-seed diff: %s", cleanDiff.Verdict())
	out += fmt.Sprintf("\nslowapp  diff: %s\n", slowDiff.Verdict())
	return variants, out, nil
}
