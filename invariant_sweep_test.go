package jade

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"testing"

	"jade/internal/core"
	"jade/internal/invariant"
)

// TestChaosSweepPassesAcrossSeeds is the headline acceptance check: the
// Fig. 5 scenario (managed, recovery, arbitration) under the default
// crash/reboot/slow schedule preserves every invariant across 20 seeds.
func TestChaosSweepPassesAcrossSeeds(t *testing.T) {
	res, err := RunChaosSweep(20, 8, 0, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure != nil {
		data, _ := res.Failure.Encode()
		t.Fatalf("seed %d violated %s:\n%s", res.Failure.Seed, res.Failure.Violation.Checker, data)
	}
	if res.Passed != 20 {
		t.Fatalf("passed = %d/20", res.Passed)
	}
	if res.Checks == 0 {
		t.Fatal("sweep performed no invariant checks")
	}
}

// sabotagedScenario wires a deliberately broken actuation into the chaos
// schedule: a test-only "sabotage" event that rips a worker out of the PLB
// directly, bypassing the Fractal unbind path the actuators use.
func sabotagedScenario() ScenarioConfig {
	base := ChaosSweepScenario(8)
	base.ChaosHandler = func(res *ScenarioResult, ev ChaosEvent) bool {
		if ev.Kind != "sabotage" {
			return false
		}
		w := res.Deployment.MustComponent("plb1").Content().(*core.PLBWrapper)
		_ = w.Balancer().RemoveWorker(ev.Target)
		return true
	}
	return base
}

// TestBrokenActuatorCaughtShrunkAndReplayed proves the harness catches a
// buggy actuation, shrinks the failing schedule to the single guilty
// event, and reproduces it from the encoded artifact.
func TestBrokenActuatorCaughtShrunkAndReplayed(t *testing.T) {
	base := sabotagedScenario()
	run := SweepRunner(base)
	sched := append(DefaultCrashSchedule(base.Profile.Duration()),
		ChaosEvent{At: base.Profile.Duration() * 0.05, Kind: "sabotage", Target: "tomcat1"})

	res, err := invariant.Sweep(invariant.SweepConfig{Run: run, Logf: t.Logf}, []int64{1}, sched)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Failure
	if a == nil {
		t.Fatal("broken actuator not caught")
	}
	if !strings.HasPrefix(a.Violation.Checker, "balancer-agreement") {
		t.Fatalf("caught by %s, want balancer-agreement", a.Violation.Checker)
	}
	if len(a.Schedule) != 1 || a.Schedule[0].Kind != "sabotage" {
		t.Fatalf("shrunk schedule = %v, want the single sabotage event", a.Schedule)
	}
	if a.ShrunkFrom != len(sched) {
		t.Fatalf("ShrunkFrom = %d, want %d", a.ShrunkFrom, len(sched))
	}

	// The artifact round-trips and replays to the same violation.
	data, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSweepArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	out, err := invariant.Replay(run, parsed)
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil || out.Violation.Checker != a.Violation.Checker {
		t.Fatalf("replay produced %+v, want %s again", out.Violation, a.Violation.Checker)
	}
}

// fig5Hash runs the compressed Fig. 5 scenario and hashes every CSV the
// figures read, plus the workload stats, into one digest.
func fig5Hash(t *testing.T, seed int64) [32]byte {
	t.Helper()
	cfg := ChaosSweepScenario(8)
	cfg.Seed = seed
	cfg.Invariants = true
	cfg.Chaos = DefaultCrashSchedule(cfg.Profile.Duration())
	r, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.InvariantViolation != nil {
		t.Fatalf("seed %d violated: %v", seed, r.InvariantViolation)
	}
	h := sha256.New()
	for _, csv := range []string{
		r.App.Replicas.CSV(), r.App.CPURaw.CSV(), r.App.CPUSmoothed.CSV(),
		r.DB.Replicas.CSV(), r.DB.CPURaw.CSV(), r.DB.CPUSmoothed.CSV(),
	} {
		h.Write([]byte(csv))
	}
	fmt.Fprintf(h, "%d %d %v %d %d",
		r.Stats.Completed, r.Stats.Failed, r.MeanLatency(), r.Reconfigurations, r.Repairs)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// TestFig5CSVHashDeterminism: same seed twice gives byte-identical CSV
// output; two different seeds diverge.
func TestFig5CSVHashDeterminism(t *testing.T) {
	a1 := fig5Hash(t, 7)
	a2 := fig5Hash(t, 7)
	if a1 != a2 {
		t.Fatal("same seed produced different CSV output")
	}
	b := fig5Hash(t, 8)
	if a1 == b {
		t.Fatal("different seeds produced identical CSV output")
	}
}

// TestScenarioInvariantHarnessCounts: the harness actually runs during a
// scenario — checks accumulate and reconfiguration boundaries fire.
func TestScenarioInvariantHarnessCounts(t *testing.T) {
	cfg := ChaosSweepScenario(8)
	cfg.Seed = 3
	cfg.Invariants = true
	r, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.InvariantViolation != nil {
		t.Fatalf("clean run violated: %v", r.InvariantViolation)
	}
	if r.InvariantChecks == 0 {
		t.Fatal("harness performed no checks")
	}
	if r.Reconfigurations == 0 {
		t.Fatal("compressed ramp did not reconfigure; boundary checks untested")
	}
}
