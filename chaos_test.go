package jade

import "testing"

func TestSessionModelPreservesManagedTrajectory(t *testing.T) {
	// Robustness of the self-sizing result to the workload model: the
	// Markov-session emulator keeps tier demands in the calibrated
	// regime, so the managed run still scales the database tier and
	// keeps latency flat.
	cfg := DefaultScenario(1, true)
	cfg.Sessions = true
	cfg.Profile = RampProfile{Base: 80, Peak: 500, StepPerMinute: 105, HoldAtPeak: 60}
	r, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Failed != 0 {
		t.Fatalf("failed = %d", r.Stats.Failed)
	}
	if got := r.DB.Replicas.Max(); got < 2 {
		t.Fatalf("db replicas peak = %v, session workload did not trigger scaling", got)
	}
	if mean := r.MeanLatency(); mean > 1.0 {
		t.Fatalf("managed mean latency = %.3fs under sessions", mean)
	}
	// Session flows really ran: auth pages precede stores.
	sb := r.Stats.Interaction("StoreBid").Count
	pa := r.Stats.Interaction("PutBidAuth").Count
	if sb == 0 || pa == 0 || sb > pa {
		t.Fatalf("session flow counts: StoreBid=%d PutBidAuth=%d", sb, pa)
	}
}

func TestAvailabilityUnderChurn(t *testing.T) {
	// The self-recovery manager keeps the service available while nodes
	// crash every ~300 s on average (each crashed node reboots into the
	// pool after 60 s, modeling an operator power-cycle).
	cfg := DefaultScenario(11, true)
	cfg.Recovery = true
	cfg.MTBFSeconds = 300
	cfg.Profile = ConstantProfile{Clients: 120, Length: 1800}
	r, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.InjectedFailures < 2 {
		t.Fatalf("injected failures = %d; churn too light to test anything", r.InjectedFailures)
	}
	if r.Repairs == 0 {
		t.Fatal("no repairs under churn")
	}
	total := float64(r.Stats.Completed + r.Stats.Failed)
	availability := float64(r.Stats.Completed) / total
	if availability < 0.90 {
		t.Fatalf("availability = %.3f (completed %d, failed %d)",
			availability, r.Stats.Completed, r.Stats.Failed)
	}
	t.Logf("churn: %d crashes, %d repairs, availability %.4f",
		r.InjectedFailures, r.Repairs, availability)
}

func TestChurnWithoutRecoveryDegrades(t *testing.T) {
	// The control case: same churn, no self-recovery manager — a crashed
	// single-replica tier stays down and failures accumulate.
	cfg := DefaultScenario(11, true)
	cfg.Recovery = false
	cfg.MTBFSeconds = 300
	cfg.Profile = ConstantProfile{Clients: 120, Length: 1800}
	r, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.InjectedFailures == 0 {
		t.Skip("no failures injected at this seed")
	}
	if r.Repairs != 0 {
		t.Fatalf("repairs = %d without a recovery manager", r.Repairs)
	}
	total := float64(r.Stats.Completed + r.Stats.Failed)
	availability := float64(r.Stats.Completed) / total
	if availability > 0.90 {
		t.Fatalf("availability without recovery = %.3f; expected degradation "+
			"(completed %d, failed %d, crashes %d)",
			availability, r.Stats.Completed, r.Stats.Failed, r.InjectedFailures)
	}
}
