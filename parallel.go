package jade

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelism is the configured fan-out width; 0 means "use GOMAXPROCS".
var parallelism atomic.Int64

// SetParallelism sets the worker count used when experiments fan
// independent simulation runs out over goroutines (sweeps, ablations,
// the paired paper runs). Values <= 0 restore the default, GOMAXPROCS.
// `jadebench -parallel N` routes here.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// Parallelism returns the experiment fan-out width: the last value given
// to SetParallelism, or GOMAXPROCS when unset.
func Parallelism() int {
	if n := parallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// forEachPar runs fn(0) .. fn(n-1) over min(Parallelism(), n) workers
// and returns the lowest-index error, so the reported failure does not
// depend on goroutine completion order. Each index must be independent:
// every fn builds its own engine and platform. With one worker (or one
// item) it degenerates to the plain loop, stopping at the first error;
// with more, later indexes may still run after an earlier one fails.
func forEachPar(n int, fn func(i int) error) error {
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
