# Tier-1 gate plus the simulation-testing harness.
#
#   make ci          - vet, race-enabled tests, chaos sweep, trace smoke
#   make test        - plain test run (what the seed gate runs)
#   make sweep       - 20-seed invariant chaos sweep at 8x compression
#   make trace-smoke - export a managed-run trace and validate its schema

GO ?= go
TRACE_TMP := $(shell mktemp -d 2>/dev/null || echo /tmp)/jade-trace.json

.PHONY: all build test vet race sweep trace-smoke ci

all: build

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

sweep:
	$(GO) run ./cmd/jadebench -sweep 20 -speedup 8

trace-smoke:
	$(GO) run ./cmd/jadectl scenario -clients 300 -duration 300 -managed -trace $(TRACE_TMP)
	$(GO) run ./cmd/jadectl trace-validate $(TRACE_TMP)
	rm -f $(TRACE_TMP)

ci: vet race sweep trace-smoke
