# Tier-1 gate plus the simulation-testing harness.
#
#   make ci      - vet, race-enabled tests, and a small chaos sweep
#   make test    - plain test run (what the seed gate runs)
#   make sweep   - 20-seed invariant chaos sweep at 8x compression

GO ?= go

.PHONY: all build test vet race sweep ci

all: build

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

sweep:
	$(GO) run ./cmd/jadebench -sweep 20 -speedup 8

ci: vet race sweep
