# Tier-1 gate plus the simulation-testing harness.
#
#   make ci           - vet, race-enabled tests, chaos sweep, smokes, api check
#   make test         - plain test run (what the seed gate runs)
#   make sweep        - 20-seed invariant chaos sweep at 8x compression
#   make trace-smoke  - export a managed-run trace and validate its schema
#   make bench-smoke  - measure the sim core into BENCH_core.json and sanity-check it
#   make obs-smoke    - scrape a live run's admin endpoint and validate the exposition
#   make netsim-smoke - run the partition scenario from examples/netfault.json
#                       end to end (invariant-checked; nonzero exit on violation)
#   make selector-smoke - selector property tests, one rendezvous fuzz pass,
#                       and the quick gray-failure routing comparison
#   make alert-smoke  - run the quick alert-latency experiment end to end
#                       (self-checking: nonzero exit unless the alert plane
#                       pages the gray replica while the φ detector is silent)
#   make fluid-smoke  - fluid-engine gate: cross-validation + determinism
#                       tests, then the quick million-client experiment
#                       (self-checking: nonzero exit unless the run reaches
#                       a million clients with both sizing loops actuating)
#   make diff-smoke   - attribution sweep tests, then the quick latency-budget
#                       experiment (self-checking: nonzero exit unless same-seed
#                       runs diff clean and the injected app slowdown is
#                       localized to app-tier queueing)
#   make config-smoke - live-config gate: the HTTP POST→apply round-trip and
#                       no-op-refresh neutrality tests, then the quick live-retune
#                       experiment (self-checking: nonzero exit unless the mid-run
#                       selector swap improves gray-failure p99 >=2x with zero
#                       restarts and a byte-identical same-seed replay)
#   make api-check    - diff the facade's exported surface against testdata/api_surface.txt

GO ?= go
TRACE_TMP := $(shell mktemp -d 2>/dev/null || echo /tmp)/jade-trace.json

.PHONY: all build test vet race sweep trace-smoke bench-smoke obs-smoke netsim-smoke selector-smoke alert-smoke fluid-smoke diff-smoke config-smoke api-check ci

all: build

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

sweep:
	$(GO) run ./cmd/jadebench -sweep 20 -speedup 8

trace-smoke:
	$(GO) run ./cmd/jadectl scenario -clients 300 -duration 300 -managed -trace.chrome $(TRACE_TMP)
	$(GO) run ./cmd/jadectl trace-validate $(TRACE_TMP)
	rm -f $(TRACE_TMP)

bench-smoke:
	$(GO) run ./cmd/jadebench -bench-core -bench-out BENCH_core.json
	$(GO) run ./cmd/jadebench -bench-validate BENCH_core.json

obs-smoke:
	$(GO) run ./cmd/jadectl scenario -clients 200 -duration 300 -managed -metrics.http 127.0.0.1:0 -metrics.scrape-check

netsim-smoke:
	$(GO) run ./cmd/jadectl scenario -config examples/netfault.json

selector-smoke:
	$(GO) test ./internal/selector
	$(GO) test -run FuzzRendezvousPick -fuzz FuzzRendezvousPick -fuzztime 1x ./internal/selector
	$(GO) test -run 'TestGrayFailureParallelismInvariance|TestRoutingPoolConcurrentObservers' .

alert-smoke:
	$(GO) run ./cmd/jadebench -experiment alertlat -quick

fluid-smoke:
	$(GO) test -run 'TestFluid(CrossValidation|Determinism)' .
	$(GO) run ./cmd/jadebench -experiment millionclient -quick

diff-smoke:
	$(GO) test -run 'TestAttrib(ConservationSweep|WindowPartition)' .
	$(GO) run ./cmd/jadebench -experiment latbudget -quick

config-smoke:
	$(GO) test -run 'TestConfigPostRoundTrip|TestNoopRefreshTrajectoryNeutral' .
	$(GO) run ./cmd/jadebench -experiment liveretune -quick

api-check:
	$(GO) test -run TestAPISurface .

ci: vet race sweep trace-smoke bench-smoke obs-smoke netsim-smoke selector-smoke alert-smoke fluid-smoke diff-smoke config-smoke api-check
