package jade

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateSurface = flag.Bool("update", false, "rewrite testdata/api_surface.txt from the current source")

// apiSurface lists every exported top-level identifier of the jade
// facade — funcs, types, consts, vars, and methods on exported types —
// one per line, sorted.
func apiSurface(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["jade"]
	if !ok {
		t.Fatalf("package jade not found in %v", pkgs)
	}
	var lines []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil {
					recv := recvName(d.Recv)
					if recv == "" || !ast.IsExported(recv) {
						continue
					}
					lines = append(lines, fmt.Sprintf("method (%s) %s", recv, d.Name.Name))
					continue
				}
				lines = append(lines, "func "+d.Name.Name)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							lines = append(lines, "type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						for _, n := range s.Names {
							if n.IsExported() {
								lines = append(lines, kind+" "+n.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return lines
}

func recvName(fl *ast.FieldList) string {
	if len(fl.List) == 0 {
		return ""
	}
	switch e := fl.List[0].Type.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// TestAPISurface diffs the facade's exported surface against the golden
// listing so API changes are deliberate: run `go test -run TestAPISurface
// -update .` to accept an intentional change.
func TestAPISurface(t *testing.T) {
	got := strings.Join(apiSurface(t), "\n") + "\n"
	golden := filepath.Join("testdata", "api_surface.txt")
	if *updateSurface {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestAPISurface -update .`): %v", err)
	}
	if got == string(want) {
		return
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(got), "\n") {
		gotSet[l] = true
	}
	wantSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(string(want)), "\n") {
		wantSet[l] = true
	}
	var diff []string
	for l := range gotSet {
		if !wantSet[l] {
			diff = append(diff, "+ "+l)
		}
	}
	for l := range wantSet {
		if !gotSet[l] {
			diff = append(diff, "- "+l)
		}
	}
	sort.Strings(diff)
	t.Fatalf("exported API surface changed (+added, -removed); run `go test -run TestAPISurface -update .` if intentional:\n%s",
		strings.Join(diff, "\n"))
}
