package jade

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"jade/internal/core"
)

// deployFiveTier deploys the full Fig. 2 architecture.
func deployFiveTier(t *testing.T) (*Platform, *Deployment) {
	t.Helper()
	p := NewPlatform(DefaultPlatformOptions())
	ds := Dataset{Regions: 5, Categories: 5, Users: 40, Items: 50, BidsPerItem: 1, CommentsPerUser: 1}
	dump, err := ds.InitialDatabase(1)
	if err != nil {
		t.Fatal(err)
	}
	p.RegisterDump("rubis", dump)
	def, err := ParseADL(FiveTierADL)
	if err != nil {
		t.Fatal(err)
	}
	var dep *Deployment
	derr := errors.New("pending")
	p.Deploy(def, func(d *Deployment, err error) { dep, derr = d, err })
	p.Eng.Run()
	if derr != nil {
		t.Fatal(derr)
	}
	return p, dep
}

func TestFiveTierDeploymentUsesAllNineNodes(t *testing.T) {
	p, dep := deployFiveTier(t)
	// Eight components on eight nodes; the ninth hosted the Jade
	// platform itself in the paper's testbed.
	if p.Pool.AllocatedCount() != 8 {
		t.Fatalf("allocated = %d, want 8", p.Pool.AllocatedCount())
	}
	if p.Pool.FreeCount() != 1 {
		t.Fatalf("free = %d, want 1", p.Pool.FreeCount())
	}
	desc := dep.Describe()
	for _, want := range []string{"web-tier", "app-tier", "db-tier",
		"servers (client http) -> apache1.http",
		"servers (client http) -> apache2.http",
		"ajp (client ajp13) -> tomcat1.ajp",
		"ajp (client ajp13) -> tomcat2.ajp",
		"backends (client jdbc) -> mysql2.sql"} {
		if !strings.Contains(desc, want) {
			t.Fatalf("Describe missing %q", want)
		}
	}
}

func TestFiveTierTrafficFlowsThroughEveryLayer(t *testing.T) {
	p, dep := deployFiveTier(t)
	front, err := dep.FrontEnd()
	if err != nil {
		t.Fatal(err)
	}
	// The L4 switch must be the front end.
	l4node, err := dep.NodeOf("l4")
	if err != nil {
		t.Fatal(err)
	}
	_ = l4node

	// 40 dynamic requests: weighted round robin spreads them over both
	// Apaches, each Apache round-robins over both Tomcats, C-JDBC
	// balances reads over both MySQLs and broadcasts writes to both.
	var pending int
	for i := 0; i < 40; i++ {
		pending++
		req := &WebRequest{
			Interaction: "mixed",
			WebCost:     0.001,
			AppCost:     0.002,
			Queries: []Query{
				{SQL: "SELECT * FROM items WHERE id = 1", Cost: 0.002},
				{SQL: fmt.Sprintf("INSERT INTO buy_now (id, buyer_id, item_id, qty, date) VALUES (%d, 1, 1, 1, 0)", i), Cost: 0.001},
			},
		}
		front.HandleHTTP(req, func(err error) {
			pending--
			if err != nil {
				t.Errorf("request failed: %v", err)
			}
		})
	}
	p.Eng.Run()
	if pending != 0 {
		t.Fatalf("%d requests never completed", pending)
	}

	// Every layer participated: even split over the Apaches (equal L4
	// weights), both Tomcats and both MySQL mirrors.
	apache1 := dep.MustComponent("apache1").Content().(*core.ApacheWrapper).Server().Served()
	apache2 := dep.MustComponent("apache2").Content().(*core.ApacheWrapper).Server().Served()
	if apache1 != 20 || apache2 != 20 {
		t.Fatalf("apache split = %d/%d, want 20/20", apache1, apache2)
	}
	tomcat1 := dep.MustComponent("tomcat1").Content().(*core.TomcatWrapper).Server().Served()
	tomcat2 := dep.MustComponent("tomcat2").Content().(*core.TomcatWrapper).Server().Served()
	if tomcat1+tomcat2 != 40 || tomcat1 == 0 || tomcat2 == 0 {
		t.Fatalf("tomcat split = %d/%d", tomcat1, tomcat2)
	}
	// Writes were mirrored onto both backends; the virtual database is
	// consistent.
	m1 := dep.MustComponent("mysql1").Content().(*core.MySQLWrapper).Server().DB().RowCount("buy_now")
	m2 := dep.MustComponent("mysql2").Content().(*core.MySQLWrapper).Server().DB().RowCount("buy_now")
	if m1 != 40 || m2 != 40 {
		t.Fatalf("mirrored rows = %d/%d, want 40/40", m1, m2)
	}
	cw := dep.MustComponent("cjdbc1").Content().(*core.CJDBCWrapper)
	if !cw.Controller().CheckConsistency().Consistent {
		t.Fatal("mirrors diverged")
	}
}
