package jade

import (
	"fmt"
	"strings"
	"time"
)

// MillionClients is the flagship experiment's peak population.
const MillionClients = 1_000_000

// millionCrossValRMS is the CPU-curve accuracy bound (RMS, CPU
// fraction) the experiment's fluid-vs-discrete cross-validation stage
// must pass before the million-client numbers are trusted.
const millionCrossValRMS = 0.05

// MillionClientResult is the outcome of the million-client experiment:
// the fluid run itself, its wall-clock cost, and the paper-scale
// cross-validation that anchors the fluid engine's accuracy.
type MillionClientResult struct {
	Run *ScenarioResult
	// WallSeconds is the real time the million-client run took.
	WallSeconds float64
	// Events is the discrete-event count of the run (management, faults,
	// ticks and the sampled stream — everything else flowed as rates).
	Events uint64
	// ClientsPerSec is peak population divided by wall seconds — the
	// headline scale metric (a discrete engine at this population would
	// need billions of events).
	ClientsPerSec float64
	// CrossVal is the paper-scenario accuracy gate run alongside.
	CrossVal *CrossValidation
}

// MillionClientScenario configures the flagship run: a RUBiS ramp to
// one million clients on datacenter-class nodes (1024 abstract
// CPU-units each), with both sizing loops active and the workload
// carried by the fluid engine except for a small sampled discrete
// stream (about 200 clients) that keeps latency percentiles, SLOs and
// alerting live. quick compresses the ramp for CI smoke runs.
func MillionClientScenario(seed int64, quick bool) ScenarioConfig {
	cfg := DefaultScenario(seed, true)
	cfg.WorkloadMode = WorkloadFluid
	cfg.NodeCPU = 1024
	cfg.Nodes = 20
	cfg.MaxAppReplicas = 6
	cfg.MaxDBReplicas = 12
	// Datacenter nodes queue in memory rather than swap-collapsing, so
	// the 2001 testbed's thrashing regime is off here; it would turn any
	// transient backlog into an unrecoverable death spiral at this scale.
	cfg.ThrashThreshold = 0
	cfg.ThrashFactor = 0
	// The paper's 60 s inhibition is tuned to a 9-node testbed growing
	// one replica per tier; reaching million-client capacity takes ~8
	// grows, so the quiet window shrinks to keep actuation ahead of a
	// ramp that adds ~100k clients per virtual minute.
	cfg.AppSizing.InhibitSeconds = 20
	cfg.DBSizing.InhibitSeconds = 20
	cfg.FluidSampleRate = 0.0002
	cfg.FluidMinSampled = 8
	if quick {
		cfg.Profile = RampProfile{Base: 100_000, Peak: MillionClients, StepPerMinute: 200_000, HoldAtPeak: 120}
		cfg.FluidSampleRate = 0.0001
	} else {
		cfg.Profile = RampProfile{Base: 100_000, Peak: MillionClients, StepPerMinute: 90_000, HoldAtPeak: 240}
	}
	return cfg
}

// RunMillionClient executes the flagship million-client experiment and
// renders its table. It is self-checking: it errors unless the run
// reaches the full million-client population, both sizing loops
// actuated (each tier grew past its initial single replica), the
// sampled discrete stream stayed alive, and the paper-scale
// fluid-vs-discrete cross-validation passes (CPU curves within
// ±5% RMS, identical resize decision sequences). quick compresses the
// ramp and skips nothing.
func RunMillionClient(seed int64, quick bool) (*MillionClientResult, string, error) {
	cv, err := FluidCrossValidation(seed, 4)
	if err != nil {
		return nil, "", fmt.Errorf("millionclient cross-validation: %w", err)
	}
	if cv.AppCPURMS > millionCrossValRMS || cv.DBCPURMS > millionCrossValRMS {
		return nil, "", fmt.Errorf("millionclient cross-validation: CPU RMS app %.4f / db %.4f exceeds %.2f",
			cv.AppCPURMS, cv.DBCPURMS, millionCrossValRMS)
	}
	if !cv.DecisionsMatch() {
		return nil, "", fmt.Errorf("millionclient cross-validation: resize decisions diverge (app %q vs %q, db %q vs %q)",
			renderSeq(cv.AppFluid), renderSeq(cv.AppDiscrete), renderSeq(cv.DBFluid), renderSeq(cv.DBDiscrete))
	}

	cfg := MillionClientScenario(seed, quick)
	t0 := time.Now()
	r, err := RunScenario(cfg)
	if err != nil {
		return nil, "", fmt.Errorf("millionclient: %w", err)
	}
	wall := time.Since(t0).Seconds()
	res := &MillionClientResult{
		Run:         r,
		WallSeconds: wall,
		Events:      r.Platform.Eng.Processed(),
		CrossVal:    cv,
	}
	if wall > 0 {
		res.ClientsPerSec = MillionClients / wall
	}

	if r.Fluid == nil {
		return nil, "", fmt.Errorf("millionclient: run carried no fluid report")
	}
	sampledPeak := ScaledProfile{Inner: cfg.Profile, Rate: cfg.FluidSampleRate, Min: cfg.FluidMinSampled}.Max()
	if got := r.Fluid.PeakPopulation + float64(sampledPeak); got < MillionClients {
		return nil, "", fmt.Errorf("millionclient: peak population %.0f never reached %d", got, MillionClients)
	}
	if r.Stats.Workload.Max() != MillionClients {
		return nil, "", fmt.Errorf("millionclient: recorded workload peak %.0f, want %d", r.Stats.Workload.Max(), MillionClients)
	}
	if r.App.Replicas.Max() <= 1 || r.DB.Replicas.Max() <= 1 {
		return nil, "", fmt.Errorf("millionclient: sizing idle (app peak %.0f, db peak %.0f replicas)",
			r.App.Replicas.Max(), r.DB.Replicas.Max())
	}
	if r.Stats.Completed == 0 {
		return nil, "", fmt.Errorf("millionclient: sampled discrete stream completed no requests")
	}
	if r.Fluid.Completed < MillionClients {
		return nil, "", fmt.Errorf("millionclient: fluid flow completed only %.0f requests", r.Fluid.Completed)
	}

	return res, res.render(cfg, quick), nil
}

func (res *MillionClientResult) render(cfg ScenarioConfig, quick bool) string {
	r := res.Run
	var b strings.Builder
	mode := "full"
	if quick {
		mode = "quick"
	}
	fmt.Fprintf(&b, "Ramp %d -> %d clients (%s), think %.0f s, %d nodes x %.0f CPU\n",
		cfg.Profile.(RampProfile).Base, MillionClients, mode, cfg.ThinkTime, cfg.Nodes, cfg.NodeCPU)
	fmt.Fprintf(&b, "%-34s %14s\n", "METRIC", "VALUE")
	row := func(name, val string) { fmt.Fprintf(&b, "%-34s %14s\n", name, val) }
	row("peak population", fmt.Sprintf("%.0f", r.Stats.Workload.Max()))
	row("fluid requests completed", fmt.Sprintf("%.3e", r.Fluid.Completed))
	row("peak offered rate (req/s)", fmt.Sprintf("%.0f", r.Fluid.PeakRate))
	row("sampled requests (exact)", fmt.Sprintf("%d", r.Stats.Completed))
	row("sampled p95 latency (ms)", fmt.Sprintf("%.2f", r.RequestLatency.Quantile(0.95)*1000))
	row("app replicas peak", fmt.Sprintf("%.0f", r.App.Replicas.Max()))
	row("db replicas peak", fmt.Sprintf("%.0f", r.DB.Replicas.Max()))
	row("reconfigurations", fmt.Sprintf("%d", r.Reconfigurations))
	row("events processed", fmt.Sprintf("%d", res.Events))
	row("wall time (s)", fmt.Sprintf("%.2f", res.WallSeconds))
	row("clients per wall-second", fmt.Sprintf("%.0f", res.ClientsPerSec))
	fmt.Fprintf(&b, "\nCross-validation (paper scenario, seed %d, %gx, fluid vs discrete):\n",
		res.CrossVal.Seed, res.CrossVal.Speedup)
	fmt.Fprintf(&b, "  app CPU RMS %.4f, db CPU RMS %.4f (bound %.2f)\n",
		res.CrossVal.AppCPURMS, res.CrossVal.DBCPURMS, millionCrossValRMS)
	fmt.Fprintf(&b, "  resize decisions identical: app [%s], db [%s]\n",
		renderSeq(res.CrossVal.AppFluid), renderSeq(res.CrossVal.DBFluid))
	return b.String()
}
