package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"jade"
	"jade/internal/obs/alert"
	"jade/internal/obs/attrib"
	"jade/internal/refresh"
	"jade/internal/sim"
)

// benchCoreSchema versions the BENCH_core.json layout; bump it when
// fields change meaning so trajectory tooling can tell runs apart.
const benchCoreSchema = "jade-bench-core/v6"

// BenchCore is one measurement of the simulation core's throughput — the
// perf trajectory record written to BENCH_core.json by `-bench-core` and
// sanity-checked by `make bench-smoke`.
type BenchCore struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`

	// Engine hot loop: schedule + fire (and the cancel-heavy reschedule
	// pattern cluster nodes use), measured via testing.Benchmark.
	EventsPerSec     float64 `json:"events_per_sec"`
	NsPerEvent       float64 `json:"ns_per_event"`
	AllocsPerEvent   float64 `json:"allocs_per_event"`
	CancelNsPerEvent float64 `json:"cancel_ns_per_event"`

	// End-to-end fan-out: a small chaos sweep, wall-clock timed.
	SweepSeeds      int     `json:"sweep_seeds"`
	SweepSpeedup    float64 `json:"sweep_speedup"`
	SweepParallel   int     `json:"sweep_parallel"`
	SweepSeconds    float64 `json:"sweep_seconds"`
	SeedsPerMinute  float64 `json:"sweep_seeds_per_minute"`
	SweepViolations int     `json:"sweep_violations"`

	// Client-perceived request latency of a short managed reference run,
	// from the scenario's exact-quantile histogram (v2).
	RequestLatencyP50Ms float64 `json:"request_latency_p50_ms"`
	RequestLatencyP99Ms float64 `json:"request_latency_p99_ms"`

	// Alerting-plane evaluation cost amortized over the reference run's
	// events (v3): one 5 s alert tick with a representative rule set,
	// times the ticks the reference run schedules, divided by its event
	// count. bench-validate asserts it stays under 2% of ns_per_event.
	AlertEvalNsPerEvent float64 `json:"alert_eval_ns_per_event"`

	// Hybrid fluid/discrete workload engine (v4): peak clients simulated
	// per wall-second by the quick million-client run, and the worst-tier
	// CPU-curve RMS of its fluid-vs-discrete cross-validation gate.
	// bench-validate asserts the RMS stays within the ±5% accuracy bound.
	FluidClientsPerSec    float64 `json:"fluid_clients_per_sec"`
	FluidVsDiscreteCPURMS float64 `json:"fluid_vs_discrete_cpu_rms"`

	// Latency-attribution cost amortized over the reference run's events
	// (v5): one full walk of the run's sampled span forest plus the
	// budget-report build, divided by the run's event count. Measured
	// interleaved with the engine hot loop (best of three each) so the
	// ratio bench-validate asserts — under 2% of ns_per_event — sees
	// the same machine load on both sides.
	AttribNsPerEvent float64 `json:"attrib_ns_per_event"`

	// Live-config read cost (v6): one refresh.View.Get() of a sizing
	// sub-config — what a manager pays each loop tick to observe its
	// refreshable configuration instead of a struct field. Charged as one
	// read per engine event (a deliberate overestimate: managers tick far
	// less often than the engine fires events). bench-validate asserts it
	// stays under 1% of ns_per_event.
	RefreshReadNsPerEvent float64 `json:"refresh_read_ns_per_event"`
}

// runBenchCore measures the simulation core and writes BENCH_core.json.
func runBenchCore(outPath string, parallel int) error {
	const eventsPerOp = 1000
	cancel := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := sim.NewEngine(1)
			var h sim.Handle
			for j := 0; j < eventsPerOp; j++ {
				e.Cancel(h)
				h = e.After(e.Uniform(1, 2), "b", benchNop)
			}
			e.Run()
		}
	})

	const sweepSeeds, sweepSpeedup = 4, 8.0
	if parallel <= 0 {
		parallel = jade.Parallelism()
	}
	fmt.Fprintf(os.Stderr, "jadebench: timing %d-seed sweep at speedup %.0fx, parallel %d...\n",
		sweepSeeds, sweepSpeedup, parallel)
	t0 := time.Now()
	res, err := jade.RunChaosSweep(sweepSeeds, sweepSpeedup, parallel, nil)
	if err != nil {
		return err
	}
	sweepSec := time.Since(t0).Seconds()

	fmt.Fprintf(os.Stderr, "jadebench: measuring reference-run request latency...\n")
	refCfg := jade.DefaultScenario(1, true)
	refCfg.Profile = jade.ConstantProfile{Clients: 200, Length: 300}
	// Trace 1 in 100 requests — the classic production head-sampling
	// rate (Dapper's default). The attribution gate below measures the
	// analysis cost amortized over every engine event at this rate, so
	// the budget reflects what a monitored deployment would pay.
	refCfg.TraceRequests = 100
	ref, err := jade.RunScenario(refCfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "jadebench: timing quick million-client fluid run (with cross-validation)...\n")
	mc, _, err := jade.RunMillionClient(1, true)
	if err != nil {
		return err
	}
	fluidRMS := math.Max(mc.CrossVal.AppCPURMS, mc.CrossVal.DBCPURMS)

	fmt.Fprintf(os.Stderr, "jadebench: benchmarking alert-plane evaluation...\n")
	tickNs := benchAlertTick()
	refreshNs := benchRefreshRead()
	refEvents := float64(ref.Platform.Eng.Processed())

	fmt.Fprintf(os.Stderr, "jadebench: benchmarking engine hot loop and latency attribution...\n")
	roots := ref.Trace().SpanTree()
	// The attribution budget below is a ratio of two microbenchmarks,
	// so both sides are measured here back to back, interleaved, and
	// each takes its best of three — the minimum is the standard
	// noise-robust estimate of intrinsic cost, and interleaving means a
	// load spike on a shared machine hits both sides of the ratio
	// rather than whichever one happened to be running.
	var core testing.BenchmarkResult
	coreNs, attribNs := math.Inf(1), math.Inf(1)
	for run := 0; run < 3; run++ {
		c := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := sim.NewEngine(1)
				for j := 0; j < eventsPerOp; j++ {
					e.After(e.Uniform(0, 100), "b", benchNop)
				}
				e.Run()
			}
		})
		if ns := float64(c.NsPerOp()); ns < coreNs {
			coreNs, core = ns, c
		}
		a := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				attrib.BuildReport(attrib.Analyze(roots), nil)
			}
		})
		attribNs = math.Min(attribNs, float64(a.NsPerOp()))
	}
	refTicks := ref.Platform.Eng.Now() / alert.NewEngine(alert.Config{}, nil).Config().EvalIntervalSeconds

	nsPerEvent := float64(core.NsPerOp()) / eventsPerOp
	rec := BenchCore{
		Schema:           benchCoreSchema,
		GoVersion:        runtime.Version(),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		EventsPerSec:     1e9 / nsPerEvent,
		NsPerEvent:       nsPerEvent,
		AllocsPerEvent:   float64(core.AllocsPerOp()) / eventsPerOp,
		CancelNsPerEvent: float64(cancel.NsPerOp()) / eventsPerOp,
		SweepSeeds:       sweepSeeds,
		SweepSpeedup:     sweepSpeedup,
		SweepParallel:    parallel,
		SweepSeconds:     sweepSec,
		SeedsPerMinute:   float64(sweepSeeds) / sweepSec * 60,

		RequestLatencyP50Ms: 1000 * ref.RequestLatency.Quantile(0.50),
		RequestLatencyP99Ms: 1000 * ref.RequestLatency.Quantile(0.99),

		AlertEvalNsPerEvent: tickNs * refTicks / refEvents,

		FluidClientsPerSec:    mc.ClientsPerSec,
		FluidVsDiscreteCPURMS: fluidRMS,

		AttribNsPerEvent: attribNs / refEvents,

		RefreshReadNsPerEvent: refreshNs,
	}
	if res.Failure != nil {
		rec.SweepViolations = 1
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench-core: %.0f events/s (%.0f ns/event, %.3f allocs/event), sweep %.1f seeds/min\n",
		rec.EventsPerSec, rec.NsPerEvent, rec.AllocsPerEvent, rec.SeedsPerMinute)
	fmt.Printf("bench-core: request latency p50 %.0f ms, p99 %.0f ms (reference run)\n",
		rec.RequestLatencyP50Ms, rec.RequestLatencyP99Ms)
	fmt.Printf("bench-core: alert eval %.2f ns/event amortized (%.2f%% of engine cost)\n",
		rec.AlertEvalNsPerEvent, 100*rec.AlertEvalNsPerEvent/rec.NsPerEvent)
	fmt.Printf("bench-core: fluid engine %.0f clients/wall-second, cross-val CPU RMS %.4f\n",
		rec.FluidClientsPerSec, rec.FluidVsDiscreteCPURMS)
	fmt.Printf("bench-core: latency attribution %.2f ns/event amortized (%.2f%% of engine cost)\n",
		rec.AttribNsPerEvent, 100*rec.AttribNsPerEvent/rec.NsPerEvent)
	fmt.Printf("bench-core: refresh-view read %.2f ns/event (%.2f%% of engine cost)\n",
		rec.RefreshReadNsPerEvent, 100*rec.RefreshReadNsPerEvent/rec.NsPerEvent)
	fmt.Printf("bench-core: wrote %s\n", outPath)
	return nil
}

// benchNop is the scheduled callback; package-level so the benchmark
// measures the engine, not closure allocation.
func benchNop() {}

// benchSizingSink keeps the refresh-read benchmark's Get() results live
// so the compiler cannot elide the loop body.
var benchSizingSink jade.SizingConfig

// benchRefreshRead measures one refresh.View.Get() (ns) of a sizing
// sub-config — the read a manager performs on each loop tick when its
// configuration is live-refreshable rather than a plain struct field.
func benchRefreshRead() float64 {
	v := refresh.NewView("bench:sizing.app", jade.AppSizingDefaults())
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSizingSink = v.Get()
		}
	})
	return float64(res.NsPerOp())
}

// benchAlertTick measures one alerting-plane evaluation tick (ns) with
// the scenario's representative rule set: four burn rules fed every
// other tick, three anomaly detectors over healthy probes, and two pool
// skew rules over warm reservoirs.
func benchAlertTick() float64 {
	build := func() (*alert.Engine, []*alert.BurnRule) {
		cfg := alert.Config{}
		e := alert.NewEngine(cfg, nil)
		burns := make([]*alert.BurnRule, 0, 4)
		for _, obj := range []string{"client-latency-p95", "client-abandon-rate", "app-cpu-band", "db-cpu-band"} {
			r := alert.NewBurnRule(cfg, obj, "client")
			burns = append(burns, r)
			e.AddRule(r)
		}
		probe := func(base float64) alert.Probe {
			return func(now float64) (float64, bool) {
				return base * (1 + 0.1*math.Sin(now/50)), true
			}
		}
		e.AddRule(alert.NewZScoreRule(cfg, "anomaly:client-latency-p99", "client", "client", true, 0.3, probe(0.2)))
		e.AddRule(alert.NewZScoreRule(cfg, "anomaly:db-latency-p99", "db", "db", true, 0.1, probe(0.05)))
		e.AddRule(alert.NewRateRule(cfg, "anomaly:client-abandon-rate", "client", "client", true, 0.02, probe(0.001)))
		appStats := []alert.BackendStat{
			{Name: "tomcat1", MeanLatency: 0.06, LatencySamples: 20, InFlight: 3},
			{Name: "tomcat2", MeanLatency: 0.07, LatencySamples: 22, InFlight: 2},
			{Name: "tomcat3", MeanLatency: 0.05, LatencySamples: 18, InFlight: 4},
		}
		dbStats := []alert.BackendStat{
			{Name: "mysql1", MeanLatency: 0.01, LatencySamples: 40, InFlight: 1},
			{Name: "mysql2", MeanLatency: 0.012, LatencySamples: 38, InFlight: 2},
		}
		e.AddRule(alert.NewSkewRule(cfg, "skew:app-pool", "app", 0.1, func() []alert.BackendStat { return appStats }))
		e.AddRule(alert.NewSkewRule(cfg, "skew:db-pool", "db", 0.05, func() []alert.BackendStat { return dbStats }))
		return e, burns
	}
	res := testing.Benchmark(func(b *testing.B) {
		e, burns := build()
		interval := e.Config().EvalIntervalSeconds
		now := 0.0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now += interval
			if i%2 == 0 { // the SLO engine evaluates at half the tick rate
				for _, r := range burns {
					r.Observe(now, 0.2, true)
				}
			}
			e.Tick(now)
		}
	})
	return float64(res.NsPerOp())
}

// validateBenchCore sanity-checks a BENCH_core.json: schema fields
// present and throughput non-zero. `make bench-smoke` runs it in CI so a
// broken benchmark writer fails fast.
func validateBenchCore(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rec BenchCore
	if err := json.Unmarshal(data, &rec); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rec.Schema != benchCoreSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, rec.Schema, benchCoreSchema)
	}
	if rec.EventsPerSec <= 0 || rec.NsPerEvent <= 0 {
		return fmt.Errorf("%s: zero engine throughput (events_per_sec=%g, ns_per_event=%g)",
			path, rec.EventsPerSec, rec.NsPerEvent)
	}
	if rec.AllocsPerEvent < 0 {
		return fmt.Errorf("%s: negative allocs_per_event %g", path, rec.AllocsPerEvent)
	}
	if rec.SweepSeeds <= 0 || rec.SeedsPerMinute <= 0 {
		return fmt.Errorf("%s: zero sweep throughput (seeds=%d, seeds_per_minute=%g)",
			path, rec.SweepSeeds, rec.SeedsPerMinute)
	}
	if rec.SweepViolations != 0 {
		return fmt.Errorf("%s: benchmark sweep hit %d invariant violations", path, rec.SweepViolations)
	}
	if rec.RequestLatencyP50Ms <= 0 || rec.RequestLatencyP99Ms < rec.RequestLatencyP50Ms {
		return fmt.Errorf("%s: implausible request latency (p50=%g ms, p99=%g ms)",
			path, rec.RequestLatencyP50Ms, rec.RequestLatencyP99Ms)
	}
	if rec.AlertEvalNsPerEvent <= 0 {
		return fmt.Errorf("%s: zero alert_eval_ns_per_event", path)
	}
	if limit := 0.02 * rec.NsPerEvent; rec.AlertEvalNsPerEvent > limit {
		return fmt.Errorf("%s: alerting plane costs %.2f ns/event, over the 2%% budget (%.2f ns/event)",
			path, rec.AlertEvalNsPerEvent, limit)
	}
	if rec.FluidClientsPerSec <= 0 {
		return fmt.Errorf("%s: zero fluid_clients_per_sec", path)
	}
	if rec.FluidVsDiscreteCPURMS <= 0 || rec.FluidVsDiscreteCPURMS > 0.05 {
		return fmt.Errorf("%s: fluid_vs_discrete_cpu_rms %.4f outside (0, 0.05] accuracy bound",
			path, rec.FluidVsDiscreteCPURMS)
	}
	if rec.AttribNsPerEvent <= 0 {
		return fmt.Errorf("%s: zero attrib_ns_per_event", path)
	}
	if limit := 0.02 * rec.NsPerEvent; rec.AttribNsPerEvent > limit {
		return fmt.Errorf("%s: latency attribution costs %.2f ns/event, over the 2%% budget (%.2f ns/event)",
			path, rec.AttribNsPerEvent, limit)
	}
	if rec.RefreshReadNsPerEvent <= 0 {
		return fmt.Errorf("%s: zero refresh_read_ns_per_event", path)
	}
	if limit := 0.01 * rec.NsPerEvent; rec.RefreshReadNsPerEvent > limit {
		return fmt.Errorf("%s: refresh-view reads cost %.2f ns/event, over the 1%% budget (%.2f ns/event)",
			path, rec.RefreshReadNsPerEvent, limit)
	}
	histPath, err := appendBenchHistory(path, data)
	if err != nil {
		return err
	}
	fmt.Printf("bench-validate: %s ok (%.0f events/s, %.1f seeds/min, alert eval %.2f ns/event, attrib %.2f ns/event, fluid %.0f clients/s)\n",
		path, rec.EventsPerSec, rec.SeedsPerMinute, rec.AlertEvalNsPerEvent, rec.AttribNsPerEvent, rec.FluidClientsPerSec)
	fmt.Printf("bench-validate: appended %s\n", histPath)
	return nil
}

// appendBenchHistory records a validated benchmark as one JSON line in
// BENCH_history.jsonl beside the validated file. The log is the perf
// trajectory `jadectl diff` compares across runs: each entry wraps the
// raw BENCH record with a wall-clock timestamp and its source filename.
func appendBenchHistory(path string, raw []byte) (string, error) {
	var compact json.RawMessage
	if err := json.Unmarshal(raw, &compact); err != nil {
		return "", err
	}
	entry := jade.BenchHistoryEntry{
		Schema:  jade.BenchHistorySchema,
		TimeUTC: time.Now().UTC().Format(time.RFC3339),
		Source:  filepath.Base(path),
		Bench:   compact,
	}
	line, err := json.Marshal(entry)
	if err != nil {
		return "", err
	}
	histPath := filepath.Join(filepath.Dir(path), "BENCH_history.jsonl")
	f, err := os.OpenFile(histPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		return "", err
	}
	return histPath, nil
}
