// Command jadebench regenerates the paper's evaluation: every figure and
// table of §5, plus the ablation studies, on the simulated cluster.
//
// Usage:
//
//	jadebench [-seed N] [-speedup X] [-csv DIR] [-experiment NAME]
//
// Experiments: fig4, fig5, fig6, fig7, fig8, fig9, table1, ablations,
// summary, all (default).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"jade"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed (runs are deterministic per seed)")
	speedup := flag.Float64("speedup", 1, "time compression of the ramp (1 = the paper's ~50-minute run)")
	csvDir := flag.String("csv", "", "directory to write figure CSV data into")
	experiment := flag.String("experiment", "all", "which experiment to run: fig4|fig5|fig6|fig7|fig8|fig9|table1|churn|ablations|summary|all")
	flag.Parse()

	if err := run(*seed, *speedup, *csvDir, strings.ToLower(*experiment)); err != nil {
		fmt.Fprintf(os.Stderr, "jadebench: %v\n", err)
		os.Exit(1)
	}
}

func run(seed int64, speedup float64, csvDir, experiment string) error {
	want := func(names ...string) bool {
		if experiment == "all" {
			return true
		}
		for _, n := range names {
			if experiment == n {
				return true
			}
		}
		return false
	}

	if want("fig4") {
		out, err := jade.Figure4(seed)
		if err != nil {
			return err
		}
		section("Figure 4 — qualitative reconfiguration scenario", out)
	}

	needRuns := want("fig5", "fig6", "fig7", "fig8", "fig9", "summary")
	var pr *jade.PaperRuns
	if needRuns {
		fmt.Fprintf(os.Stderr, "jadebench: running the paper scenario (managed + unmanaged, speedup %.0fx)...\n", speedup)
		var err error
		pr, err = jade.RunPaperScenario(seed, speedup)
		if err != nil {
			return err
		}
	}
	if pr != nil {
		if want("fig5") {
			section("Figure 5 — dynamically adjusted number of replicas", pr.Figure5())
		}
		if want("fig6") {
			section("Figure 6 — behavior of the database tier", pr.Figure6())
		}
		if want("fig7") {
			section("Figure 7 — behavior of the application tier", pr.Figure7())
		}
		if want("fig8") {
			section("Figure 8 — response time without Jade", pr.Figure8())
		}
		if want("fig9") {
			section("Figure 9 — response time with Jade", pr.Figure9())
		}
		if want("summary") {
			section("Scenario summary", pr.Summary())
		}
		if csvDir != "" {
			if err := os.MkdirAll(csvDir, 0o755); err != nil {
				return err
			}
			for name, body := range pr.CSVs() {
				path := filepath.Join(csvDir, name)
				if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "jadebench: wrote %s\n", path)
			}
		}
	}

	if want("churn") {
		cfg := jade.DefaultScenario(seed+10, true)
		cfg.Recovery = true
		cfg.MTBFSeconds = 300
		cfg.Profile = jade.ConstantProfile{Clients: 120, Length: 1800}
		r, err := jade.RunScenario(cfg)
		if err != nil {
			return err
		}
		total := float64(r.Stats.Completed + r.Stats.Failed)
		section("Availability under churn — self-recovery manager",
			fmt.Sprintf("MTBF 300 s over 1800 s at 120 clients:\n"+
				"  crashes injected:  %d\n  repairs completed: %d\n"+
				"  requests:          %d completed, %d failed\n"+
				"  availability:      %.4f\n",
				r.InjectedFailures, r.Repairs, r.Stats.Completed, r.Stats.Failed,
				float64(r.Stats.Completed)/total))
	}

	if want("table1") {
		res, err := jade.RunTable1(seed, 600)
		if err != nil {
			return err
		}
		section("Table 1 — performance overhead (intrusivity)", res.Render())
	}

	if want("ablations") {
		abSpeed := speedup
		if abSpeed < 2 {
			abSpeed = 2
		}
		sm, err := jade.RunAblationSmoothing(seed, abSpeed)
		if err != nil {
			return err
		}
		section("Ablation — sensor smoothing", jade.RenderAblation("Moving-average window", sm))
		in, err := jade.RunAblationInhibition(seed, abSpeed)
		if err != nil {
			return err
		}
		section("Ablation — reconfiguration inhibition", jade.RenderAblation("Inhibition window", in))
		th, err := jade.RunAblationThresholds(seed, abSpeed)
		if err != nil {
			return err
		}
		section("Ablation — threshold sweep", jade.RenderAblation("CPU thresholds", th))
		bp, err := jade.RunAblationBalancerPolicy(seed)
		if err != nil {
			return err
		}
		section("Ablation — C-JDBC read policy", jade.RenderAblation("Read balancing policy", bp))
		rp, err := jade.RunAblationRecoveryLogReplay(seed, []int{0, 250, 500, 1000, 2000})
		if err != nil {
			return err
		}
		section("Ablation — recovery-log replay", jade.RenderReplay(rp))
	}
	return nil
}

func section(title, body string) {
	fmt.Printf("\n================================================================\n")
	fmt.Printf("%s\n", title)
	fmt.Printf("================================================================\n")
	fmt.Println(body)
}
