// Command jadebench regenerates the paper's evaluation: every figure and
// table of §5, plus the ablation studies, on the simulated cluster.
//
// Usage:
//
//	jadebench [-seed N] [-speedup X] [-csv DIR] [-experiment NAME] [-quick] [-trace.chrome FILE]
//	jadebench -sweep N [-speedup X] [-parallel N] [-artifact PATH]
//	jadebench -replay PATH [-speedup X]
//	jadebench -bench-core [-bench-out PATH] [-parallel N]
//	jadebench -bench-validate PATH
//
// -trace.chrome writes the managed paper run's telemetry bus as a Chrome
// trace-event file (Perfetto-loadable); the old -trace spelling still
// parses as a hidden deprecated alias that warns once.
//
// -parallel fans independent runs (sweep seeds, ablation variants, the
// managed/unmanaged pair) over a worker pool; 0 uses GOMAXPROCS. Results
// are byte-identical whatever the worker count.
//
// Scenario-override flags (-route.*, -net.*, -alert.*, -fault.mtbf,
// -workload.*, -sessions, -recovery) register from the same cliutil
// table as jadectl scenario and apply to the paper runs (fig5-9,
// summary) and churn; self-contained experiments (grayfail, liveretune,
// netfault, ...) fix their own configurations and ignore them.
//
// -bench-core benchmarks the simulation core (events/sec, ns/event,
// allocs/event, sweep seeds/minute) and writes BENCH_core.json;
// -bench-validate sanity-checks such a record.
//
// Experiments: fig4, fig5, fig6, fig7, fig8, fig9, table1, churn,
// netfault, grayfail, liveretune, alertlat, latbudget, ablations,
// summary, all (default). netfault compares the φ-accrual failure
// detector and self-recovery under message loss, heartbeat partitions
// and real crashes on the simulated network. grayfail compares routing
// policies while one replica per tier is degraded but never dead.
// liveretune swaps the routing policy mid-run through the live-config
// plane (zero restarts) and proves the swap pays off, replays
// byte-identically, and reaches the managed sizing loop. alertlat
// measures the alerting plane's virtual-time-to-first-page against the
// φ detector on gray and crash faults. latbudget decomposes traced
// request latency into per-tier queue/service/network/retry budgets on
// the managed ramp and proves `jadectl diff` localizes an injected
// app-tier slowdown (both self-checking; -quick shrinks them for CI).
//
// -sweep runs the invariant-checked chaos sweep (the Fig. 5 scenario under
// a crash/reboot/slow schedule) over N seeds, writing a replayable artifact
// on the first violation. -replay re-runs such an artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"jade"
	"jade/internal/cliutil"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed (runs are deterministic per seed)")
	speedup := flag.Float64("speedup", 1, "time compression of the ramp (1 = the paper's ~50-minute run)")
	csvDir := flag.String("csv", "", "directory to write figure CSV data into")
	experiment := flag.String("experiment", "all", "which experiment to run: fig4|fig5|fig6|fig7|fig8|fig9|table1|churn|netfault|grayfail|liveretune|alertlat|latbudget|millionclient|ablations|summary|all")
	quick := flag.Bool("quick", false, "shrink the grayfail/liveretune/alertlat/latbudget runs for smoke tests")
	sweep := flag.Int("sweep", 0, "run the invariant chaos sweep over this many seeds instead of an experiment")
	artifact := flag.String("artifact", "sweep-failure.json", "where -sweep writes the replayable artifact on failure")
	replay := flag.String("replay", "", "replay a failure artifact written by -sweep")
	traceOut := flag.String("trace.chrome", "", "write the managed paper run's telemetry bus as a Chrome trace-event file")
	parallel := flag.Int("parallel", 0, "worker count for fanning independent runs out (0 = GOMAXPROCS; results are deterministic regardless)")
	benchCore := flag.Bool("bench-core", false, "benchmark the simulation core and write the perf record instead of running an experiment")
	benchOut := flag.String("bench-out", "BENCH_core.json", "where -bench-core writes its record")
	benchValidate := flag.String("bench-validate", "", "sanity-check a BENCH_core.json written by -bench-core")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	specFlags := cliutil.RegisterSpecGroups(flag.CommandLine,
		"sessions", "recovery", "workload", "fault", "route", "net", "alert")
	cliutil.Warnings = os.Stderr
	cliutil.Alias(flag.CommandLine, "trace.chrome", "trace")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: jadebench [flags]")
		cliutil.PrintDefaults(flag.CommandLine, os.Stderr)
	}
	flag.Parse()

	if *parallel > 0 {
		jade.SetParallelism(*parallel)
	}
	override, oerr := specFlags.ScenarioOverride()
	if oerr != nil {
		fmt.Fprintf(os.Stderr, "jadebench: %v\n", oerr)
		os.Exit(1)
	}
	err := withProfiles(*cpuprofile, *memprofile, func() error {
		switch {
		case *benchValidate != "":
			return validateBenchCore(*benchValidate)
		case *benchCore:
			return runBenchCore(*benchOut, *parallel)
		case *replay != "":
			return runReplay(*replay, *speedup)
		case *sweep > 0:
			return runSweep(*sweep, *speedup, *parallel, *artifact)
		default:
			return run(*seed, *speedup, *csvDir, strings.ToLower(*experiment), *traceOut, *quick, override)
		}
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "jadebench: %v\n", err)
		os.Exit(1)
	}
}

// withProfiles brackets body with the optional pprof hooks: a CPU
// profile over the whole invocation and a heap profile (after a final
// GC) at exit, written whether or not body errors.
func withProfiles(cpuPath, memPath string, body func() error) error {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "jadebench: wrote CPU profile %s\n", cpuPath)
		}()
	}
	if memPath != "" {
		defer func() {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "jadebench: heap profile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "jadebench: heap profile: %v\n", err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "jadebench: wrote heap profile %s\n", memPath)
		}()
	}
	return body()
}

func runSweep(seeds int, speedup float64, parallel int, artifactPath string) error {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "jadebench: "+format+"\n", args...)
	}
	res, err := jade.RunChaosSweep(seeds, speedup, parallel, logf)
	if err != nil {
		return err
	}
	if res.Failure == nil {
		fmt.Printf("sweep: %d/%d seeds passed (%d runs, %d invariant checks)\n",
			res.Passed, len(res.Seeds), res.Runs, res.Checks)
		return nil
	}
	data, err := res.Failure.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(artifactPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("sweep: seed %d VIOLATED %s\n  %s\n  schedule (%d events, shrunk from %d): %s\n  artifact: %s\n",
		res.Failure.Seed, res.Failure.Violation.Checker, res.Failure.Violation.Detail,
		len(res.Failure.Schedule), res.Failure.ShrunkFrom, res.Failure.Schedule, artifactPath)
	return fmt.Errorf("invariant violated (replay with -replay %s)", artifactPath)
}

func runReplay(path string, speedup float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	a, err := jade.ParseSweepArtifact(data)
	if err != nil {
		return err
	}
	fmt.Printf("replay: seed %d, schedule: %s\n", a.Seed, a.Schedule)
	out, reproduced, err := jade.ReplayArtifact(a, speedup)
	if err != nil {
		return err
	}
	if reproduced {
		fmt.Printf("replay: REPRODUCED %s\n  %s\n", out.Violation.Checker, out.Violation.Detail)
		return nil
	}
	if out.Violation != nil {
		fmt.Printf("replay: different violation: %v\n", out.Violation)
		return nil
	}
	return fmt.Errorf("replay did not reproduce the violation (%d checks passed)", out.Checks)
}

func run(seed int64, speedup float64, csvDir, experiment, traceOut string, quick bool, override func(*jade.ScenarioConfig)) error {
	want := func(names ...string) bool {
		if experiment == "all" {
			return true
		}
		for _, n := range names {
			if experiment == n {
				return true
			}
		}
		return false
	}

	if want("fig4") {
		out, err := jade.Figure4(seed)
		if err != nil {
			return err
		}
		section("Figure 4 — qualitative reconfiguration scenario", out)
	}

	needRuns := want("fig5", "fig6", "fig7", "fig8", "fig9", "summary") || traceOut != ""
	var pr *jade.PaperRuns
	if needRuns {
		fmt.Fprintf(os.Stderr, "jadebench: running the paper scenario (managed + unmanaged, speedup %.0fx)...\n", speedup)
		var err error
		pr, err = jade.RunPaperScenario(seed, speedup, override)
		if err != nil {
			return err
		}
	}
	if pr != nil {
		if want("fig5") {
			section("Figure 5 — dynamically adjusted number of replicas", pr.Figure5())
		}
		if want("fig6") {
			section("Figure 6 — behavior of the database tier", pr.Figure6())
		}
		if want("fig7") {
			section("Figure 7 — behavior of the application tier", pr.Figure7())
		}
		if want("fig8") {
			section("Figure 8 — response time without Jade", pr.Figure8())
		}
		if want("fig9") {
			section("Figure 9 — response time with Jade", pr.Figure9())
		}
		if want("summary") {
			section("Scenario summary", pr.Summary())
		}
		if csvDir != "" {
			if err := os.MkdirAll(csvDir, 0o755); err != nil {
				return err
			}
			for name, body := range pr.CSVs() {
				path := filepath.Join(csvDir, name)
				if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "jadebench: wrote %s\n", path)
			}
		}
		if traceOut != "" {
			f, err := os.Create(traceOut)
			if err != nil {
				return err
			}
			tr := pr.Managed.Trace()
			if err := tr.WriteChromeTrace(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			st := tr.Stat()
			fmt.Fprintf(os.Stderr, "jadebench: wrote %s (%d events, %d spans)\n", traceOut, st.Events, st.Spans)
		}
	}

	if want("churn") {
		cfg := jade.DefaultScenario(seed+10, true)
		cfg.Recovery = true
		cfg.MTBFSeconds = 300
		cfg.Profile = jade.ConstantProfile{Clients: 120, Length: 1800}
		if override != nil {
			override(&cfg)
		}
		r, err := jade.RunScenario(cfg)
		if err != nil {
			return err
		}
		total := float64(r.Stats.Completed + r.Stats.Failed)
		section("Availability under churn — self-recovery manager",
			fmt.Sprintf("MTBF 300 s over 1800 s at 120 clients:\n"+
				"  crashes injected:  %d\n  repairs completed: %d\n"+
				"  requests:          %d completed, %d failed\n"+
				"  availability:      %.4f\n",
				r.InjectedFailures, r.Repairs, r.Stats.Completed, r.Stats.Failed,
				float64(r.Stats.Completed)/total))
	}

	if want("netfault") {
		_, table, err := jade.RunNetFault(seed)
		if err != nil {
			return err
		}
		section("Managed recovery under network faults — loss, partitions, crashes", table)
	}

	if want("grayfail") {
		_, table, err := jade.RunGrayFailure(seed, quick)
		if err != nil {
			return err
		}
		section("Routing policies under gray failure — slow-but-alive replicas", table)
	}

	if want("liveretune") {
		fmt.Fprintf(os.Stderr, "jadebench: running the live-retune experiment (quick=%v)...\n", quick)
		_, table, err := jade.RunLiveRetune(seed, quick)
		if err != nil {
			return err
		}
		section("Live retune — runtime policy swap over the admin plane, zero restarts", table)
	}

	if want("alertlat") {
		_, table, err := jade.RunAlertLatency(seed, quick)
		if err != nil {
			return err
		}
		section("Alert latency — burn-rate/anomaly paging vs φ-accrual detection", table)
	}

	if want("latbudget") {
		fmt.Fprintf(os.Stderr, "jadebench: running the latency-budget experiment (quick=%v)...\n", quick)
		_, table, err := jade.RunLatBudget(seed, quick)
		if err != nil {
			return err
		}
		section("Latency budgets — per-tier attribution, critical path, run diff", table)
	}

	if want("millionclient") {
		fmt.Fprintf(os.Stderr, "jadebench: running the million-client fluid experiment (quick=%v)...\n", quick)
		_, table, err := jade.RunMillionClient(seed, quick)
		if err != nil {
			return err
		}
		section("Million-client scale — hybrid fluid/discrete workload engine", table)
	}

	if want("table1") {
		res, err := jade.RunTable1(seed, 600)
		if err != nil {
			return err
		}
		section("Table 1 — performance overhead (intrusivity)", res.Render())
	}

	if want("ablations") {
		abSpeed := speedup
		if abSpeed < 2 {
			abSpeed = 2
		}
		sm, err := jade.RunAblationSmoothing(seed, abSpeed)
		if err != nil {
			return err
		}
		section("Ablation — sensor smoothing", jade.RenderAblation("Moving-average window", sm))
		in, err := jade.RunAblationInhibition(seed, abSpeed)
		if err != nil {
			return err
		}
		section("Ablation — reconfiguration inhibition", jade.RenderAblation("Inhibition window", in))
		th, err := jade.RunAblationThresholds(seed, abSpeed)
		if err != nil {
			return err
		}
		section("Ablation — threshold sweep", jade.RenderAblation("CPU thresholds", th))
		bp, err := jade.RunAblationBalancerPolicy(seed)
		if err != nil {
			return err
		}
		section("Ablation — C-JDBC read policy", jade.RenderAblation("Read balancing policy", bp))
		rp, err := jade.RunAblationRecoveryLogReplay(seed, []int{0, 250, 500, 1000, 2000})
		if err != nil {
			return err
		}
		section("Ablation — recovery-log replay", jade.RenderReplay(rp))
	}
	return nil
}

func section(title, body string) {
	fmt.Printf("\n================================================================\n")
	fmt.Printf("%s\n", title)
	fmt.Printf("================================================================\n")
	fmt.Println(body)
}
