package main

import (
	"flag"
	"fmt"
	"os"

	"jade"
	"jade/internal/cliutil"
)

// cmdDiff compares two run artifact directories (written with
// -metrics.dir) and prints a deterministic regression verdict. Same-seed
// runs diff clean; a run with a localized slowdown is flagged with the
// responsible tier and latency component. Exits nonzero on regression.
func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	relTol := fs.Float64("tol", 0, "relative tolerance for budget components and metric series (0 = default 0.05)")
	sloTol := fs.Float64("slo-tol", 0, "absolute SLO compliance drop that flags an objective (0 = default 0.01)")
	benchTol := fs.Float64("bench-tol", 0, "relative tolerance for BENCH_history ns/event entries (0 = default 0.10)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: jadectl diff [-tol X] [-slo-tol X] [-bench-tol X] RUN_DIR_A RUN_DIR_B")
		cliutil.PrintDefaults(fs, os.Stderr)
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("diff takes exactly two run directories")
	}
	d, err := jade.DiffRuns(fs.Arg(0), fs.Arg(1), jade.RunDiffOptions{
		RelTol: *relTol, SLOTol: *sloTol, BenchTol: *benchTol,
	})
	if err != nil {
		return err
	}
	fmt.Print(d.Render())
	if !d.Clean() {
		return fmt.Errorf("run %s regressed relative to %s (%d findings)",
			fs.Arg(1), fs.Arg(0), len(d.Findings))
	}
	return nil
}
