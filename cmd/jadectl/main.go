// Command jadectl is the administration front end of the Jade platform:
// it validates and deploys architecture descriptions on a simulated
// cluster, introspects the resulting component architecture, and shows
// the legacy configuration files the wrappers generated.
//
// Usage:
//
//	jadectl validate [-adl FILE]
//	jadectl deploy   [-adl FILE] [-seed N] [-nodes N] [-show-config] [-export]
//	jadectl scenario [-config FILE] [-seed N] [-clients N] [-duration SECONDS] [-pace X]
//	                 [-managed] [-sessions] [-recovery] [-fault.mtbf SECONDS]
//	                 [-route.policy NAME] [-route.l4 NAME] [-route.app NAME]
//	                 [-route.db NAME] [-route.probe-after S] [-route.half-life S]
//	                 [-net.enable] [-net.latency MS] [-net.jitter MS] [-net.loss P]
//	                 [-trace.chrome FILE] [-trace.jsonl FILE] [-trace.requests N]
//	                 [-metrics.dir DIR] [-metrics.interval SECONDS]
//	                 [-metrics.http ADDR] [-metrics.scrape-check] [-metrics.serve]
//	                 [-alerts] [-alert.off] [-alert.interval S] [-alert.fast S]
//	                 [-alert.slow S] [-alert.page-burn X] [-alert.warn-burn X]
//	                 [-alert.z X] [-alert.skew X] [-alert.hysteresis S]
//	                 [-alert.monitor]
//	jadectl config get [-addr HOST:PORT]
//	jadectl config set [-addr HOST:PORT] PATCH|@FILE|-
//	jadectl trace-validate FILE
//	jadectl diff [-tol X] [-slo-tol X] [-bench-tol X] RUN_DIR_A RUN_DIR_B
//
// Without -adl, the built-in three-tier RUBiS architecture is used.
//
// config get/set talk to a live run's admin plane (a scenario started
// with -metrics.http, usually with -metrics.serve and -pace so the run
// is still going): get prints the refreshable-configuration document
// (/config), set posts a patch — a JSON literal, @FILE, or - for stdin
// — that the simulation validates and applies at its next drain tick.
// Rejections come back as structured field errors (the same paths
// Spec.Validate reports). See docs/CONFIG.md for the patch grammar.
//
// -pace slows the simulation to the given number of simulated seconds
// per wall-clock second so live reconfiguration can be exercised
// interactively; 0 (the default) runs as fast as possible.
//
// -route.policy picks the backend-selection policy every tier uses
// (round-robin, weighted-round-robin, least-pending, balanced,
// rendezvous); -route.l4/-route.app/-route.db override it per tier, and
// -route.probe-after/-route.half-life tune the shared selector pool.
//
// scenario flags are namespaced by concern (fault.*, route.*, net.*,
// trace.*, metrics.*); the pre-namespace spellings (-mtbf, -trace, -trace-jsonl,
// -trace-requests, -metrics-dir, -metrics-interval, -http, -scrape-check,
// -serve) still parse as hidden deprecated aliases that warn once.
//
// -config loads a grouped run spec (JSON, the jade.Spec schema — see
// examples/netfault.json); flags set explicitly on the command line
// override the file. A run whose spec enables invariant checking exits
// nonzero on the first violation.
//
// -net.enable routes every inter-tier call and heartbeat over the
// simulated network (per-link latency/jitter/loss, injectable
// partitions); with -recovery it also replaces the recovery manager's
// failure oracle with the φ-accrual heartbeat detector.
//
// -trace.chrome exports the run's telemetry bus in Chrome trace-event
// format (load it at ui.perfetto.dev); -trace.jsonl exports the raw
// events and spans one JSON object per line. trace-validate checks an
// exported Chrome trace against the trace-event schema.
//
// -metrics.dir writes periodic metrics snapshots (Prometheus text +
// JSON) plus the run's alert stream (alerts.jsonl) and incident reports
// (incidents.json), the SLO compliance report (slo_report.json), the
// per-tier latency budget (latency_budget.json) and the fluid-engine
// internals (fluid.json). -metrics.http serves the live admin endpoint
// (/metrics, /metrics.json, /healthz, /components, /loops, /alerts,
// /incidents, /fluid) while the scenario runs; -metrics.serve keeps it
// up afterwards, and -metrics.scrape-check makes jadectl scrape and
// validate its own endpoint after the run (the CI smoke check).
//
// diff compares two such artifact directories — latency budgets, SLO
// reports, final metrics snapshots, and BENCH_history.jsonl entries when
// present — and emits a deterministic regression verdict: same-seed runs
// diff clean, and a localized slowdown is blamed on the responsible tier
// and latency component (e.g. app/queue). diff exits nonzero on
// regression, so it slots into CI.
//
// -alerts prints the run's alert and incident report (causal timelines
// included) after the SLO table. -alert.* tunes the alerting plane
// (burn-rate windows, anomaly z-score, pool-skew factor); -alert.off
// disables rule evaluation, and -alert.monitor arms the φ-accrual
// heartbeat detector as a pure signal source (requires -net.enable).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"time"

	"jade"
	"jade/internal/cliutil"
)

func main() {
	cliutil.Warnings = os.Stderr
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "validate":
		err = cmdValidate(args)
	case "deploy":
		err = cmdDeploy(args)
	case "scenario":
		err = cmdScenario(args)
	case "config":
		err = cmdConfig(args)
	case "trace-validate":
		err = cmdTraceValidate(args)
	case "diff":
		err = cmdDiff(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "jadectl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "jadectl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  jadectl validate [-adl FILE]
  jadectl deploy   [-adl FILE] [-seed N] [-nodes N] [-show-config] [-export]
  jadectl scenario [-config FILE] [-seed N] [-clients N] [-duration SECONDS] [-pace X]
                   [-managed] [-sessions] [-recovery] [-fault.mtbf SECONDS]
                   [-route.policy NAME] [-route.l4 NAME] [-route.app NAME]
                   [-route.db NAME] [-route.probe-after S] [-route.half-life S]
                   [-net.enable] [-net.latency MS] [-net.jitter MS] [-net.loss P]
                   [-trace.chrome FILE] [-trace.jsonl FILE] [-trace.requests N]
                   [-metrics.dir DIR] [-metrics.interval SECONDS]
                   [-metrics.http ADDR] [-metrics.scrape-check] [-metrics.serve]
                   [-alerts] [-alert.off] [-alert.interval S] [-alert.fast S]
                   [-alert.slow S] [-alert.page-burn X] [-alert.warn-burn X]
                   [-alert.z X] [-alert.skew X] [-alert.hysteresis S]
                   [-alert.monitor]
  jadectl config get [-addr HOST:PORT]
  jadectl config set [-addr HOST:PORT] PATCH|@FILE|-
  jadectl trace-validate FILE
  jadectl diff [-tol X] [-slo-tol X] [-bench-tol X] RUN_DIR_A RUN_DIR_B`)
}

func loadADL(path string) (*jade.ADLDefinition, error) {
	text := jade.ThreeTierADL
	if path != "" {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		text = string(raw)
	}
	return jade.ParseADL(text)
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	adlPath := fs.String("adl", "", "architecture description file (default: built-in three-tier)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	def, err := loadADL(*adlPath)
	if err != nil {
		return err
	}
	p := jade.NewPlatform(jade.DefaultPlatformOptions())
	if err := def.Validate(wrapperSet(p)); err != nil {
		return err
	}
	fmt.Printf("%s: valid (%d components, %d bindings)\n",
		def.Name, len(def.AllComponents()), len(def.Bindings))
	for _, pc := range def.AllComponents() {
		where := pc.CompositePath
		if where == "" {
			where = "(top level)"
		}
		fmt.Printf("  %-12s wrapper=%-8s in %s\n", pc.Name, pc.Wrapper, where)
	}
	return nil
}

func wrapperSet(p *jade.Platform) map[string]bool {
	out := map[string]bool{}
	for _, k := range p.WrapperKinds() {
		out[k] = true
	}
	return out
}

func cmdDeploy(args []string) error {
	fs := flag.NewFlagSet("deploy", flag.ExitOnError)
	adlPath := fs.String("adl", "", "architecture description file (default: built-in three-tier)")
	seed := fs.Int64("seed", 1, "simulation seed")
	nodes := fs.Int("nodes", 9, "cluster pool size")
	showConfig := fs.Bool("show-config", false, "print the generated legacy configuration files")
	export := fs.Bool("export", false, "re-export the live architecture as an ADL document")
	if err := fs.Parse(args); err != nil {
		return err
	}
	def, err := loadADL(*adlPath)
	if err != nil {
		return err
	}
	opts := jade.DefaultPlatformOptions()
	opts.Seed = *seed
	opts.Nodes = *nodes
	p := jade.NewPlatform(opts)
	db, err := jade.DefaultDataset().InitialDatabase(*seed)
	if err != nil {
		return err
	}
	p.RegisterDump("rubis", db)

	var dep *jade.Deployment
	derr := fmt.Errorf("deployment did not complete")
	p.Deploy(def, func(d *jade.Deployment, err error) { dep, derr = d, err })
	p.Eng.Run()
	if derr != nil {
		return derr
	}
	fmt.Printf("deployed %s in %.1f simulated seconds\n\n", def.Name, p.Eng.Now())
	fmt.Println("management layer:")
	fmt.Println(dep.Describe())
	fmt.Println("node assignments:")
	for _, name := range dep.ComponentNames() {
		node, err := dep.NodeOf(name)
		if err != nil {
			continue
		}
		fmt.Printf("  %-12s -> %-8s (cpu %.0f%%, mem %.0f MB)\n",
			name, node.Name(), 100*node.BusyTotal()/max1(p.Eng.Now()), node.MemoryUsed())
	}
	if *showConfig {
		fmt.Println("\ngenerated legacy configuration files:")
		for _, path := range p.FS.List() {
			raw, err := p.FS.ReadFile(path)
			if err != nil {
				continue
			}
			fmt.Printf("\n--- %s ---\n%s", path, raw)
		}
	}
	if *export {
		text, err := dep.ExportADL().Render()
		if err != nil {
			return err
		}
		fmt.Println("\nre-exported architecture description:")
		fmt.Print(text)
	}
	return nil
}

func max1(v float64) float64 {
	if v <= 0 {
		return 1
	}
	return v
}

func cmdScenario(args []string) error {
	fs := flag.NewFlagSet("scenario", flag.ExitOnError)
	configPath := fs.String("config", "", "grouped run spec (JSON, the jade.Spec schema); explicit flags override the file")
	seed := fs.Int64("seed", 1, "simulation seed")
	clients := fs.Int("clients", 200, "constant client population")
	duration := fs.Float64("duration", 600, "workload duration (simulated seconds)")
	managed := fs.Bool("managed", true, "arm the self-optimization managers")
	pace := fs.Float64("pace", 0, "pace the run to this many simulated seconds per wall second (0 = as fast as possible; useful with -metrics.http)")
	traceOut := fs.String("trace.chrome", "", "write the telemetry bus as a Chrome trace-event file (Perfetto-loadable)")
	traceJSONL := fs.String("trace.jsonl", "", "write the telemetry bus as JSONL (one event/span per line)")
	scrapeCheck := fs.Bool("metrics.scrape-check", false, "after the run, scrape the admin endpoint and validate the exposition (requires -metrics.http)")
	serve := fs.Bool("metrics.serve", false, "keep the admin endpoint serving the final pages after the run (requires -metrics.http; ctrl-C to exit)")
	showAlerts := fs.Bool("alerts", false, "print the run's alert and incident report after the SLO table")
	specFlags := cliutil.RegisterSpecFlags(fs)
	cliutil.Alias(fs, "trace.chrome", "trace")
	cliutil.Alias(fs, "trace.jsonl", "trace-jsonl")
	cliutil.Alias(fs, "metrics.scrape-check", "scrape-check")
	cliutil.Alias(fs, "metrics.serve", "serve")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: jadectl scenario [flags]")
		cliutil.PrintDefaults(fs, os.Stderr)
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	httpAddr := fs.Lookup("metrics.http").Value.String()
	if (*scrapeCheck || *serve) && httpAddr == "" {
		return fmt.Errorf("-metrics.scrape-check and -metrics.serve require -metrics.http")
	}

	spec := jade.DefaultSpec(*seed, *managed)
	spec.Workload.Profile = jade.ProfileSpec{Kind: "constant", Clients: *clients, DurationSeconds: *duration}
	apply := func(name string) {
		if specFlags.Apply(&spec, name) {
			return
		}
		switch name {
		case "seed":
			spec.Seed = *seed
		case "managed":
			spec.Managed = *managed
		case "clients", "duration":
			spec.Workload.Profile = jade.ProfileSpec{Kind: "constant", Clients: *clients, DurationSeconds: *duration}
		}
	}
	if *configPath != "" {
		loaded, err := jade.LoadSpec(*configPath)
		if err != nil {
			return err
		}
		spec = loaded
		cliutil.SetVisited(fs, apply)
	} else {
		specFlags.ApplyAll(&spec)
	}
	if spec.Telemetry.TraceRequests == 0 && (*traceOut != "" || *traceJSONL != "") {
		spec.Telemetry.TraceRequests = 25
	}
	cfg, err := spec.Flatten()
	if err != nil {
		return err
	}
	cfg.Pace = *pace
	if cfg.HTTPAddr != "" {
		cfg.AdminReady = func(addr string) {
			fmt.Fprintf(os.Stderr, "admin endpoint: http://%s/metrics\n", addr)
		}
	}
	fmt.Fprintf(os.Stderr, "running %s for %.0fs (managed=%v, network=%v)...\n",
		describeProfile(spec.Workload.Profile), cfg.Profile.Duration(), cfg.Managed, cfg.Net.Enabled)
	t0 := time.Now()
	r, err := jade.RunScenario(cfg)
	if err != nil {
		return err
	}
	wall := time.Since(t0).Seconds()
	processed := r.Platform.Eng.Processed()
	fmt.Fprintf(os.Stderr, "sim: %d events in %.2fs wall (%.0f events/s)\n",
		processed, wall, float64(processed)/wall)
	s := r.Stats.LatencySummary()
	fmt.Printf("completed: %d requests (%d failed)\n", r.Stats.Completed, r.Stats.Failed)
	fmt.Printf("throughput: %.1f req/s\n", r.Throughput())
	fmt.Printf("latency: mean %.0f ms, p50 %.0f ms, p99 %.0f ms, max %.0f ms\n",
		s.Mean*1000, s.P50*1000, s.P99*1000, s.Max*1000)
	fmt.Printf("db replicas: peak %.0f   app replicas: peak %.0f   reconfigurations: %d\n",
		r.DB.Replicas.Max(), r.App.Replicas.Max(), r.Reconfigurations)
	fmt.Printf("node usage: cpu %.1f%%, mem %.1f%% (averaged over component nodes)\n",
		r.NodeCPUPercent, r.NodeMemPercent)
	if r.InjectedFailures > 0 || r.Repairs > 0 {
		fmt.Printf("churn: %d crashes injected, %d repairs completed\n",
			r.InjectedFailures, r.Repairs)
	}
	if cfg.Net.Enabled {
		fmt.Printf("network: %d messages, %d delivered (dropped: %d loss, %d partition), %d RPCs (%d retransmits, %d abandoned), %d partitions injected\n",
			r.Net.Messages, r.Net.Delivered, r.Net.DroppedLoss, r.Net.DroppedPartition,
			r.Net.RPCs, r.Net.Retransmits, r.Net.Abandoned, r.Net.Partitions)
	}
	if r.Detector != nil {
		fmt.Printf("detector: %d suspicions (%d true, %d false, %d healed)",
			r.Detector.Suspicions, r.Detector.TruePositives, r.Detector.FalsePositives, r.Detector.Heals)
		if r.Detector.TruePositives > 0 {
			fmt.Printf(", mean detection latency %.1f s", r.Detector.MeanDetectionLatency())
		}
		fmt.Println()
	}
	if cfg.Invariants {
		fmt.Printf("invariants: %d checks, %d repair discards (%d confirmed legal)\n",
			r.InvariantChecks, r.RepairDiscards, r.RepairsConfirmedLegal)
	}
	fmt.Printf("\nSLO compliance:\n%s", r.SLOReport.Render())
	if *showAlerts {
		fmt.Printf("\nAlerts and incidents:\n%s", r.Alerts.RenderText())
	}
	if err := writeTraces(r, *traceOut, *traceJSONL); err != nil {
		return err
	}
	if v := r.InvariantViolation; v != nil {
		return fmt.Errorf("invariant %q violated at t=%.1f (%s): %s", v.Checker, v.Time, v.Event, v.Detail)
	}
	if r.Admin != nil {
		defer r.Admin.Close()
	}
	if *scrapeCheck {
		if err := scrapeAdmin(r); err != nil {
			return err
		}
	}
	if *serve {
		fmt.Fprintf(os.Stderr, "serving final pages on http://%s (ctrl-C to exit)\n", r.AdminAddr)
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
	return nil
}

// describeProfile renders a workload profile spec for the progress line.
func describeProfile(ps jade.ProfileSpec) string {
	switch ps.Kind {
	case "constant":
		return fmt.Sprintf("%d clients", ps.Clients)
	case "", "paper-ramp":
		return "the paper ramp"
	}
	return ps.Kind + " profile"
}

// scrapeAdmin fetches the run's own admin endpoint and validates every
// exposition format plus the SLO report — the CI smoke check.
func scrapeAdmin(r *jade.ScenarioResult) error {
	get := func(path string) ([]byte, error) {
		resp, err := http.Get("http://" + r.AdminAddr + path)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %s", path, resp.Status)
		}
		return body, nil
	}
	prom, err := get("/metrics")
	if err != nil {
		return err
	}
	n, err := jade.ValidatePrometheusText(prom)
	if err != nil {
		return fmt.Errorf("/metrics: %w", err)
	}
	js, err := get("/metrics.json")
	if err != nil {
		return err
	}
	series, err := jade.ValidateMetricsJSON(js)
	if err != nil {
		return fmt.Errorf("/metrics.json: %w", err)
	}
	comp, err := get("/components")
	if err != nil {
		return err
	}
	nodes, err := jade.ValidateComponentsJSON(comp)
	if err != nil {
		return fmt.Errorf("/components: %w", err)
	}
	if _, err := get("/healthz"); err != nil {
		return err
	}
	if _, err := get("/loops"); err != nil {
		return err
	}
	alerts, err := get("/alerts")
	if err != nil {
		return err
	}
	if err := jade.ValidateAlertsPage(alerts); err != nil {
		return fmt.Errorf("/alerts: %w", err)
	}
	incidents, err := get("/incidents")
	if err != nil {
		return err
	}
	if err := jade.ValidateIncidentsJSON(incidents); err != nil {
		return fmt.Errorf("/incidents: %w", err)
	}
	fluid, err := get("/fluid")
	if err != nil {
		return err
	}
	if err := jade.ValidateFluidPage(fluid); err != nil {
		return fmt.Errorf("/fluid: %w", err)
	}
	evaluated := 0
	for _, o := range r.SLOReport.Objectives {
		evaluated += o.Intervals
	}
	if evaluated == 0 {
		return fmt.Errorf("scrape-check: SLO report has no evaluated intervals")
	}
	fmt.Printf("scrape-check: %d samples (/metrics), %d series (/metrics.json), %d components, %d SLO intervals — ok\n",
		n, series, nodes, evaluated)
	return nil
}

// writeTraces exports the run's telemetry bus in the requested formats.
func writeTraces(r *jade.ScenarioResult, chromePath, jsonlPath string) error {
	tr := r.Trace()
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		st := tr.Stat()
		fmt.Printf("trace: %s (%d events, %d spans; load at ui.perfetto.dev)\n",
			chromePath, st.Events, st.Spans)
		warnTraceDrops(chromePath, st.SpansDropped, st.EventsEvicted, true)
	}
	if jsonlPath != "" {
		f, err := os.Create(jsonlPath)
		if err != nil {
			return err
		}
		if err := tr.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %s (JSONL)\n", jsonlPath)
	}
	return nil
}

// cmdConfig talks to a live run's admin /config endpoint: get fetches
// the refreshable-configuration document, set posts a patch that the
// simulation applies at its next drain tick.
func cmdConfig(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: jadectl config get|set [-addr HOST:PORT] [PATCH]")
	}
	sub, args := args[0], args[1:]
	fs := flag.NewFlagSet("config "+sub, flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "admin endpoint address (the -metrics.http address of the running scenario)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: jadectl config %s [flags]", sub)
		if sub == "set" {
			fmt.Fprint(os.Stderr, " PATCH|@FILE|-")
		}
		fmt.Fprintln(os.Stderr)
		cliutil.PrintDefaults(fs, os.Stderr)
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch sub {
	case "get":
		if fs.NArg() != 0 {
			return fmt.Errorf("usage: jadectl config get [-addr HOST:PORT]")
		}
		resp, err := http.Get("http://" + *addr + "/config")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET /config: %s\n%s", resp.Status, body)
		}
		if _, err := jade.ParseConfigSnapshot(body); err != nil {
			return fmt.Errorf("GET /config: %w", err)
		}
		os.Stdout.Write(body)
		return nil
	case "set":
		if fs.NArg() != 1 {
			return fmt.Errorf("usage: jadectl config set [-addr HOST:PORT] PATCH|@FILE|-")
		}
		patch, err := readPatchArg(fs.Arg(0))
		if err != nil {
			return err
		}
		resp, err := http.Post("http://"+*addr+"/config", "application/json", bytes.NewReader(patch))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		os.Stdout.Write(body)
		if resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("POST /config: %s", resp.Status)
		}
		return nil
	default:
		return fmt.Errorf("unknown config subcommand %q (want get or set)", sub)
	}
}

// readPatchArg resolves a config patch argument: a literal JSON object,
// @FILE, or - for stdin.
func readPatchArg(arg string) ([]byte, error) {
	switch {
	case arg == "-":
		return io.ReadAll(os.Stdin)
	case len(arg) > 1 && arg[0] == '@':
		return os.ReadFile(arg[1:])
	default:
		return []byte(arg), nil
	}
}

func cmdTraceValidate(args []string) error {
	fs := flag.NewFlagSet("trace-validate", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: jadectl trace-validate FILE")
	}
	path := fs.Arg(0)
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	n, err := jade.ValidateChromeTrace(raw)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: valid Chrome trace (%d trace events)\n", path, n)
	dropped, evicted, ok := jade.ChromeTraceStats(raw)
	warnTraceDrops(path, dropped, evicted, ok)
	return nil
}

// warnTraceDrops reports an incomplete trace record: spans refused by a
// full span store or events evicted from the ring buffer (the same
// counters the run exports as jade_trace_dropped_spans_total /
// jade_trace_evicted_events_total). The record is still valid — but
// latency attribution over it would undercount, so say so.
func warnTraceDrops(path string, droppedSpans, evictedEvents uint64, ok bool) {
	if !ok {
		return
	}
	if droppedSpans > 0 {
		fmt.Fprintf(os.Stderr, "jadectl: warning: %s: %d spans were dropped (span store full) — the record is incomplete\n",
			path, droppedSpans)
	}
	if evictedEvents > 0 {
		fmt.Fprintf(os.Stderr, "jadectl: warning: %s: %d events were evicted from the ring buffer — early events are missing\n",
			path, evictedEvents)
	}
}
