// Command jadectl is the administration front end of the Jade platform:
// it validates and deploys architecture descriptions on a simulated
// cluster, introspects the resulting component architecture, and shows
// the legacy configuration files the wrappers generated.
//
// Usage:
//
//	jadectl validate [-adl FILE]
//	jadectl deploy   [-adl FILE] [-seed N] [-nodes N] [-show-config] [-export]
//	jadectl scenario [-seed N] [-clients N] [-duration SECONDS] [-managed] [-sessions] [-recovery] [-mtbf SECONDS]
//	                 [-trace FILE] [-trace-jsonl FILE] [-trace-requests N]
//	                 [-metrics-dir DIR] [-metrics-interval SECONDS]
//	                 [-http ADDR] [-scrape-check] [-serve]
//	jadectl trace-validate FILE
//
// Without -adl, the built-in three-tier RUBiS architecture is used.
// -trace exports the run's telemetry bus in Chrome trace-event format
// (load it at ui.perfetto.dev); -trace-jsonl exports the raw events and
// spans one JSON object per line. trace-validate checks an exported
// Chrome trace against the trace-event schema.
//
// -metrics-dir writes periodic metrics snapshots (Prometheus text +
// JSON). -http serves the live admin endpoint (/metrics, /metrics.json,
// /healthz, /components, /loops) while the scenario runs; -serve keeps it
// up afterwards, and -scrape-check makes jadectl scrape and validate its
// own endpoint after the run (the CI smoke check).
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"time"

	"jade"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "validate":
		err = cmdValidate(args)
	case "deploy":
		err = cmdDeploy(args)
	case "scenario":
		err = cmdScenario(args)
	case "trace-validate":
		err = cmdTraceValidate(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "jadectl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "jadectl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  jadectl validate [-adl FILE]
  jadectl deploy   [-adl FILE] [-seed N] [-nodes N] [-show-config] [-export]
  jadectl scenario [-seed N] [-clients N] [-duration SECONDS] [-managed] [-sessions] [-recovery] [-mtbf SECONDS]
                   [-trace FILE] [-trace-jsonl FILE] [-trace-requests N]
                   [-metrics-dir DIR] [-metrics-interval SECONDS]
                   [-http ADDR] [-scrape-check] [-serve]
  jadectl trace-validate FILE`)
}

func loadADL(path string) (*jade.ADLDefinition, error) {
	text := jade.ThreeTierADL
	if path != "" {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		text = string(raw)
	}
	return jade.ParseADL(text)
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	adlPath := fs.String("adl", "", "architecture description file (default: built-in three-tier)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	def, err := loadADL(*adlPath)
	if err != nil {
		return err
	}
	p := jade.NewPlatform(jade.DefaultPlatformOptions())
	if err := def.Validate(wrapperSet(p)); err != nil {
		return err
	}
	fmt.Printf("%s: valid (%d components, %d bindings)\n",
		def.Name, len(def.AllComponents()), len(def.Bindings))
	for _, pc := range def.AllComponents() {
		where := pc.CompositePath
		if where == "" {
			where = "(top level)"
		}
		fmt.Printf("  %-12s wrapper=%-8s in %s\n", pc.Name, pc.Wrapper, where)
	}
	return nil
}

func wrapperSet(p *jade.Platform) map[string]bool {
	out := map[string]bool{}
	for _, k := range p.WrapperKinds() {
		out[k] = true
	}
	return out
}

func cmdDeploy(args []string) error {
	fs := flag.NewFlagSet("deploy", flag.ExitOnError)
	adlPath := fs.String("adl", "", "architecture description file (default: built-in three-tier)")
	seed := fs.Int64("seed", 1, "simulation seed")
	nodes := fs.Int("nodes", 9, "cluster pool size")
	showConfig := fs.Bool("show-config", false, "print the generated legacy configuration files")
	export := fs.Bool("export", false, "re-export the live architecture as an ADL document")
	if err := fs.Parse(args); err != nil {
		return err
	}
	def, err := loadADL(*adlPath)
	if err != nil {
		return err
	}
	opts := jade.DefaultPlatformOptions()
	opts.Seed = *seed
	opts.Nodes = *nodes
	p := jade.NewPlatform(opts)
	db, err := jade.DefaultDataset().InitialDatabase(*seed)
	if err != nil {
		return err
	}
	p.RegisterDump("rubis", db)

	var dep *jade.Deployment
	derr := fmt.Errorf("deployment did not complete")
	p.Deploy(def, func(d *jade.Deployment, err error) { dep, derr = d, err })
	p.Eng.Run()
	if derr != nil {
		return derr
	}
	fmt.Printf("deployed %s in %.1f simulated seconds\n\n", def.Name, p.Eng.Now())
	fmt.Println("management layer:")
	fmt.Println(dep.Describe())
	fmt.Println("node assignments:")
	for _, name := range dep.ComponentNames() {
		node, err := dep.NodeOf(name)
		if err != nil {
			continue
		}
		fmt.Printf("  %-12s -> %-8s (cpu %.0f%%, mem %.0f MB)\n",
			name, node.Name(), 100*node.BusyTotal()/max1(p.Eng.Now()), node.MemoryUsed())
	}
	if *showConfig {
		fmt.Println("\ngenerated legacy configuration files:")
		for _, path := range p.FS.List() {
			raw, err := p.FS.ReadFile(path)
			if err != nil {
				continue
			}
			fmt.Printf("\n--- %s ---\n%s", path, raw)
		}
	}
	if *export {
		text, err := dep.ExportADL().Render()
		if err != nil {
			return err
		}
		fmt.Println("\nre-exported architecture description:")
		fmt.Print(text)
	}
	return nil
}

func max1(v float64) float64 {
	if v <= 0 {
		return 1
	}
	return v
}

func cmdScenario(args []string) error {
	fs := flag.NewFlagSet("scenario", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	clients := fs.Int("clients", 200, "constant client population")
	duration := fs.Float64("duration", 600, "workload duration (simulated seconds)")
	managed := fs.Bool("managed", true, "arm the self-optimization managers")
	sessions := fs.Bool("sessions", false, "use Markov sessions instead of i.i.d. interaction sampling")
	recovery := fs.Bool("recovery", false, "arm the self-recovery manager")
	mtbf := fs.Float64("mtbf", 0, "inject node crashes with this mean time between failures (seconds; 0 = none)")
	traceOut := fs.String("trace", "", "write the telemetry bus as a Chrome trace-event file (Perfetto-loadable)")
	traceJSONL := fs.String("trace-jsonl", "", "write the telemetry bus as JSONL (one event/span per line)")
	traceReqs := fs.Int("trace-requests", 0, "open a causal span for every N-th client request (0 = default 25 when tracing)")
	metricsDir := fs.String("metrics-dir", "", "write periodic metrics snapshots (Prometheus text + JSON) into this directory")
	metricsInterval := fs.Float64("metrics-interval", 60, "snapshot period in simulated seconds")
	httpAddr := fs.String("http", "", "serve the live admin endpoint on this address (e.g. :8080 or 127.0.0.1:0)")
	scrapeCheck := fs.Bool("scrape-check", false, "after the run, scrape the admin endpoint and validate the exposition (requires -http)")
	serve := fs.Bool("serve", false, "keep the admin endpoint serving the final pages after the run (requires -http; ctrl-C to exit)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*scrapeCheck || *serve) && *httpAddr == "" {
		return fmt.Errorf("-scrape-check and -serve require -http")
	}
	cfg := jade.DefaultScenario(*seed, *managed)
	cfg.Profile = jade.ConstantProfile{Clients: *clients, Length: *duration}
	cfg.Sessions = *sessions
	cfg.Recovery = *recovery
	cfg.MTBFSeconds = *mtbf
	cfg.TraceRequests = *traceReqs
	if cfg.TraceRequests == 0 && (*traceOut != "" || *traceJSONL != "") {
		cfg.TraceRequests = 25
	}
	cfg.MetricsDir = *metricsDir
	cfg.MetricsInterval = *metricsInterval
	cfg.HTTPAddr = *httpAddr
	if *httpAddr != "" {
		cfg.AdminReady = func(addr string) {
			fmt.Fprintf(os.Stderr, "admin endpoint: http://%s/metrics\n", addr)
		}
	}
	fmt.Fprintf(os.Stderr, "running %v clients for %.0fs (managed=%v)...\n", *clients, *duration, *managed)
	t0 := time.Now()
	r, err := jade.RunScenario(cfg)
	if err != nil {
		return err
	}
	wall := time.Since(t0).Seconds()
	processed := r.Platform.Eng.Processed()
	fmt.Fprintf(os.Stderr, "sim: %d events in %.2fs wall (%.0f events/s)\n",
		processed, wall, float64(processed)/wall)
	s := r.Stats.LatencySummary()
	fmt.Printf("completed: %d requests (%d failed)\n", r.Stats.Completed, r.Stats.Failed)
	fmt.Printf("throughput: %.1f req/s\n", r.Throughput())
	fmt.Printf("latency: mean %.0f ms, p50 %.0f ms, p99 %.0f ms, max %.0f ms\n",
		s.Mean*1000, s.P50*1000, s.P99*1000, s.Max*1000)
	fmt.Printf("db replicas: peak %.0f   app replicas: peak %.0f   reconfigurations: %d\n",
		r.DB.Replicas.Max(), r.App.Replicas.Max(), r.Reconfigurations)
	fmt.Printf("node usage: cpu %.1f%%, mem %.1f%% (averaged over component nodes)\n",
		r.NodeCPUPercent, r.NodeMemPercent)
	if r.InjectedFailures > 0 || r.Repairs > 0 {
		fmt.Printf("churn: %d crashes injected, %d repairs completed\n",
			r.InjectedFailures, r.Repairs)
	}
	fmt.Printf("\nSLO compliance:\n%s", r.SLOReport.Render())
	if err := writeTraces(r, *traceOut, *traceJSONL); err != nil {
		return err
	}
	if r.Admin != nil {
		defer r.Admin.Close()
	}
	if *scrapeCheck {
		if err := scrapeAdmin(r); err != nil {
			return err
		}
	}
	if *serve {
		fmt.Fprintf(os.Stderr, "serving final pages on http://%s (ctrl-C to exit)\n", r.AdminAddr)
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
	return nil
}

// scrapeAdmin fetches the run's own admin endpoint and validates every
// exposition format plus the SLO report — the CI smoke check.
func scrapeAdmin(r *jade.ScenarioResult) error {
	get := func(path string) ([]byte, error) {
		resp, err := http.Get("http://" + r.AdminAddr + path)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %s", path, resp.Status)
		}
		return body, nil
	}
	prom, err := get("/metrics")
	if err != nil {
		return err
	}
	n, err := jade.ValidatePrometheusText(prom)
	if err != nil {
		return fmt.Errorf("/metrics: %w", err)
	}
	js, err := get("/metrics.json")
	if err != nil {
		return err
	}
	series, err := jade.ValidateMetricsJSON(js)
	if err != nil {
		return fmt.Errorf("/metrics.json: %w", err)
	}
	comp, err := get("/components")
	if err != nil {
		return err
	}
	nodes, err := jade.ValidateComponentsJSON(comp)
	if err != nil {
		return fmt.Errorf("/components: %w", err)
	}
	if _, err := get("/healthz"); err != nil {
		return err
	}
	if _, err := get("/loops"); err != nil {
		return err
	}
	evaluated := 0
	for _, o := range r.SLOReport.Objectives {
		evaluated += o.Intervals
	}
	if evaluated == 0 {
		return fmt.Errorf("scrape-check: SLO report has no evaluated intervals")
	}
	fmt.Printf("scrape-check: %d samples (/metrics), %d series (/metrics.json), %d components, %d SLO intervals — ok\n",
		n, series, nodes, evaluated)
	return nil
}

// writeTraces exports the run's telemetry bus in the requested formats.
func writeTraces(r *jade.ScenarioResult, chromePath, jsonlPath string) error {
	tr := r.Trace()
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		st := tr.Stat()
		fmt.Printf("trace: %s (%d events, %d spans; load at ui.perfetto.dev)\n",
			chromePath, st.Events, st.Spans)
	}
	if jsonlPath != "" {
		f, err := os.Create(jsonlPath)
		if err != nil {
			return err
		}
		if err := tr.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %s (JSONL)\n", jsonlPath)
	}
	return nil
}

func cmdTraceValidate(args []string) error {
	fs := flag.NewFlagSet("trace-validate", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: jadectl trace-validate FILE")
	}
	path := fs.Arg(0)
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	n, err := jade.ValidateChromeTrace(raw)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: valid Chrome trace (%d trace events)\n", path, n)
	return nil
}
